"""Query categorization used by the paper's figures.

Evaluation results are broken down two ways:

* by the travel distance of the ground-truth path (the bands of Table II);
* by whether the query's source / destination lie inside regions of the
  learned region graph: *InRegion* (both inside), *InOutRegion* (exactly one
  inside), *OutRegion* (neither inside).
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from ..network.road_network import RoadNetwork
from ..regions.region_graph import RegionGraph
from ..trajectories.models import MatchedTrajectory
from ..trajectories.statistics import band_index


class RegionCategory(str, Enum):
    """Region-membership category of a query."""

    IN_REGION = "InRegion"
    IN_OUT_REGION = "InOutRegion"
    OUT_REGION = "OutRegion"


def region_category(
    region_graph: RegionGraph, source: int, destination: int
) -> RegionCategory:
    """Classify a query by region membership of its endpoints."""
    source_in = region_graph.region_of(source) is not None
    destination_in = region_graph.region_of(destination) is not None
    if source_in and destination_in:
        return RegionCategory.IN_REGION
    if source_in or destination_in:
        return RegionCategory.IN_OUT_REGION
    return RegionCategory.OUT_REGION


def distance_category(
    network: RoadNetwork,
    trajectory: MatchedTrajectory,
    bands_km: Sequence[tuple[float, float]],
) -> int | None:
    """Index of the distance band of a ground-truth trajectory."""
    return band_index(trajectory.distance_km(network), bands_km)


def band_label(bands_km: Sequence[tuple[float, float]], index: int) -> str:
    lo, hi = bands_km[index]
    return f"({lo:g},{hi:g}]"
