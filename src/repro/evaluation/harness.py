"""The evaluation harness (Section VII).

Given a fitted L2R pipeline, a set of baseline algorithms, and a testing
trajectory set, the harness replays every test query (source, destination,
departure time, driver id), measures each algorithm's answer against the
ground-truth path with Eq. 1 and Eq. 4, records the per-query run time, and
aggregates the results by distance band and by region category — the exact
breakdowns of Figs. 10, 11, and 12.

Every compared method is driven through the
:class:`~repro.service.engine.RoutingEngine` protocol — the identical
request/response path the :class:`~repro.service.RoutingService` serves in
production — so the harness measures exactly what serving would measure.
Legacy :class:`~repro.baselines.base.RoutingAlgorithm` instances are adapted
automatically by :meth:`EvaluationHarness.add_algorithm`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..baselines.base import RoutingAlgorithm
from ..exceptions import ReproError
from ..network.road_network import RoadNetwork
from ..regions.region_graph import RegionGraph
from ..service.api import RouteRequest, RouteResponse
from ..service.engine import RoutingEngine
from ..trajectories.models import MatchedTrajectory
from .categories import RegionCategory, band_label, distance_category, region_category
from .metrics import AggregateRow, QueryResult, accuracy_eq1, accuracy_eq4, aggregate


@dataclass
class EvaluationReport:
    """All per-query results plus the paper-style aggregations."""

    results: list[QueryResult]
    bands_km: tuple[tuple[float, float], ...]

    def by_distance(self) -> list[AggregateRow]:
        """Fig. 10/11/12 style aggregation per distance band."""
        rows: list[AggregateRow] = []
        for index in range(len(self.bands_km)):
            members = [r for r in self.results if r.distance_band == index]
            rows.extend(aggregate(members, band_label(self.bands_km, index)))
        return rows

    def by_region(self) -> list[AggregateRow]:
        """Fig. 10/11/12 style aggregation per region category."""
        rows: list[AggregateRow] = []
        for category in RegionCategory:
            members = [r for r in self.results if r.region_category == category]
            rows.extend(aggregate(members, category.value))
        return rows

    def overall(self) -> list[AggregateRow]:
        return aggregate(self.results, "overall")

    def algorithms(self) -> list[str]:
        return sorted({r.algorithm for r in self.results})

    def mean_accuracy(self, algorithm: str, use_eq4: bool = False) -> float:
        rows = [r for r in self.results if r.algorithm == algorithm and not r.failed]
        if not rows:
            return 0.0
        values = [r.accuracy_eq4 if use_eq4 else r.accuracy_eq1 for r in rows]
        return sum(values) / len(values)

    def mean_runtime(self, algorithm: str) -> float:
        rows = [r for r in self.results if r.algorithm == algorithm and not r.failed]
        if not rows:
            return 0.0
        return sum(r.runtime_s for r in rows) / len(rows)


@dataclass
class EvaluationHarness:
    """Runs the paper's accuracy / efficiency comparison."""

    network: RoadNetwork
    region_graph: RegionGraph
    bands_km: tuple[tuple[float, float], ...]
    engines: list[RoutingEngine] = field(default_factory=list)

    def add_algorithm(self, algorithm: RoutingAlgorithm) -> "EvaluationHarness":
        """Register a legacy algorithm (adapted to the engine protocol)."""
        return self.add_engine(algorithm.as_engine())

    def add_engine(self, engine: RoutingEngine) -> "EvaluationHarness":
        """Register any engine satisfying the ``RoutingEngine`` protocol."""
        self.engines.append(engine)
        return self

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        test_trajectories: Sequence[MatchedTrajectory],
        max_queries: int | None = None,
    ) -> EvaluationReport:
        """Replay test queries through every registered engine."""
        results: list[QueryResult] = []
        queries = list(test_trajectories)
        if max_queries is not None:
            queries = queries[:max_queries]

        for trajectory in queries:
            band = distance_category(self.network, trajectory, self.bands_km)
            category = region_category(
                self.region_graph, trajectory.source, trajectory.destination
            )
            ground_truth_km = trajectory.distance_km(self.network)
            request = RouteRequest(
                source=trajectory.source,
                destination=trajectory.destination,
                departure_time=trajectory.departure_time,
                driver_id=trajectory.driver_id,
                request_id=str(trajectory.trajectory_id),
            )
            for engine in self.engines:
                results.append(
                    self._evaluate_one(engine, request, trajectory, band, category, ground_truth_km)
                )
        return EvaluationReport(results=results, bands_km=self.bands_km)

    def _evaluate_one(
        self,
        engine: RoutingEngine,
        request: RouteRequest,
        trajectory: MatchedTrajectory,
        band: int | None,
        category: RegionCategory,
        ground_truth_km: float,
    ) -> QueryResult:
        # The harness measures wall time itself: protocol engines are not
        # obliged to populate latency_s, and a raising engine (the protocol
        # cannot enforce BaseEngine's no-raise discipline) must degrade to a
        # failed result, not abort the whole evaluation — as must an ok
        # response whose path turns out not to score against this network.
        started = time.perf_counter()
        try:
            response = engine.route(request)
        except ReproError as exc:
            response = RouteResponse.from_error(request, engine.name, exc)
        elapsed = time.perf_counter() - started
        if response.ok:
            try:
                return QueryResult(
                    algorithm=engine.name,
                    trajectory_id=trajectory.trajectory_id,
                    distance_band=band,
                    region_category=category,
                    accuracy_eq1=accuracy_eq1(self.network, trajectory.path, response.path),
                    accuracy_eq4=accuracy_eq4(self.network, trajectory.path, response.path),
                    runtime_s=elapsed,
                    ground_truth_km=ground_truth_km,
                )
            except ReproError:
                pass
        return QueryResult(
            algorithm=engine.name,
            trajectory_id=trajectory.trajectory_id,
            distance_band=band,
            region_category=category,
            accuracy_eq1=0.0,
            accuracy_eq4=0.0,
            runtime_s=elapsed,
            ground_truth_km=ground_truth_km,
            failed=True,
        )
