"""Learn-to-Route (L2R): trajectory-based routing with sparse trajectory sets.

A reproduction of Guo, Yang, Hu, Jensen - "Learning to Route with Sparse
Trajectory Sets", ICDE 2018 (extended version arXiv:1802.07980).

The top-level package re-exports the pieces most users need: the
:class:`~repro.core.l2r.LearnToRoute` pipeline, the road-network and
trajectory substrates, the baselines, and the evaluation harness.  See the
subpackages for the full API:

* :mod:`repro.network` - road networks, road types, spatial tools, generators
* :mod:`repro.routing` - Dijkstra / A* / CH / preference-aware routing
* :mod:`repro.trajectories` - GPS models, simulation, map matching
* :mod:`repro.regions` - trajectory graph, modularity clustering, region graph
* :mod:`repro.preferences` - preference learning, transfer, application
* :mod:`repro.core` - the L2R pipeline and region-graph router
* :mod:`repro.baselines` - Shortest, Fastest, Dom, TRIP, Popular, Google-like
* :mod:`repro.evaluation` - accuracy / efficiency harness (Figs. 10-13)
* :mod:`repro.datasets` - canned D1-like and D2-like scenarios
* :mod:`repro.service` - the RoutingService serving layer (engines, batching,
  caching, model persistence)
* :mod:`repro.traffic` - live-traffic cost updates (TrafficFeed, synthetic
  congestion) with delta-aware cache invalidation
"""

from .core import L2RConfig, LearnToRoute, RegionRouter
from .network import RoadNetwork, RoadType
from .preferences import FeatureCatalog, PreferenceVector, TransferConfig
from .routing import CostFeature, Path
from .trajectories import MatchedTrajectory, Trajectory, TrajectoryGenerator
from .service import (
    RouteRequest,
    RouteResponse,
    RoutingEngine,
    RoutingService,
    ServiceStats,
    load_model,
    save_model,
)
from .traffic import TrafficFeed, TrafficUpdate, TrafficUpdateResult
from .exceptions import ReproError

__version__ = "1.1.0"

__all__ = [
    "CostFeature",
    "FeatureCatalog",
    "L2RConfig",
    "LearnToRoute",
    "MatchedTrajectory",
    "Path",
    "PreferenceVector",
    "RegionRouter",
    "ReproError",
    "RoadNetwork",
    "RoadType",
    "RouteRequest",
    "RouteResponse",
    "RoutingEngine",
    "RoutingService",
    "ServiceStats",
    "TrafficFeed",
    "TrafficUpdate",
    "TrafficUpdateResult",
    "Trajectory",
    "TrajectoryGenerator",
    "TransferConfig",
    "__version__",
    "load_model",
    "save_model",
]
