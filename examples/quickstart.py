"""Quickstart: fit learn-to-route once, then serve requests with RoutingService.

Run with::

    python examples/quickstart.py

The script builds a small synthetic road network with simulated taxi
trajectories, fits the L2R pipeline (region graph + preference learning +
transfer), registers the fitted model and two baselines with a
:class:`~repro.service.RoutingService`, answers a batch of routing requests
through the unified request/response API, and finally saves / reloads the
fitted model to show that a serving process can start without re-running the
offline pipeline.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import LearnToRoute, RouteRequest, RoutingService
from repro.baselines import FastestBaseline, ShortestBaseline
from repro.datasets import tiny_scenario
from repro.datasets.splits import split_by_id
from repro.preferences import path_similarity
from repro.service import ContractionEngine


def main() -> None:
    # 1. A synthetic scenario: a 10x10 city grid plus 120 simulated trips.
    scenario = tiny_scenario(seed=3, n_trajectories=120)
    network = scenario.network
    print(f"Network: {network.vertex_count} vertices, {network.edge_count} edges")
    print(f"Trajectories: {len(scenario.trajectories)}")

    # 2. Temporal-style train / test split.
    split = split_by_id(scenario.trajectories, train_fraction=0.75)
    print(f"Training on {len(split.train)} trajectories, testing on {len(split.test)}")

    # 3. Fit the L2R pipeline (Steps 1-3 of the paper) — once, offline.
    pipeline = LearnToRoute().fit(network, split.train)
    region_graph = pipeline.region_graph
    print(
        f"Region graph: {region_graph.region_count} regions, "
        f"{len(region_graph.t_edges())} T-edges, {len(region_graph.b_edges())} B-edges, "
        f"connected={region_graph.is_connected()}"
    )

    # 4. One serving facade, many engines: L2R falls back to Fastest when it
    #    cannot answer, and every answer is cached for repeat queries.  The
    #    CH engine answers exact fastest paths from a precompiled
    #    contraction hierarchy — the cheapest backend for repeated queries,
    #    and live-traffic updates re-weight it in place instead of
    #    rebuilding.
    network.prepare_hierarchy()  # pay CH preprocessing up front (optional)
    service = RoutingService(cache_size=1024)
    service.register("L2R", pipeline.as_engine(), fallback="Fastest", default=True)
    service.register("Shortest", ShortestBaseline(network).as_engine())
    service.register("Fastest", FastestBaseline(network).as_engine())
    service.register("CH", ContractionEngine(network))

    requests = [
        RouteRequest(
            source=t.source,
            destination=t.destination,
            departure_time=t.departure_time,
            request_id=str(t.trajectory_id),
        )
        for t in split.test[:8]
    ]

    # 5. Batch-route through every engine and compare with the drivers' paths.
    print("\nPer-query Eq. 1 similarity against the driver's actual path:")
    print(f"{'query':>6} {'L2R':>8} {'Shortest':>10} {'Fastest':>10} {'CH':>8}")
    engine_names = ("L2R", "Shortest", "Fastest", "CH")
    per_engine = {
        name: service.route_many(requests, engine=name, max_workers=4)
        for name in engine_names
    }
    for index, trajectory in enumerate(split.test[:8]):
        # Failed requests carry path=None plus an error instead of raising.
        scores = [
            path_similarity(network, trajectory.path, answer.path) if answer.ok else 0.0
            for answer in (per_engine[name][index] for name in engine_names)
        ]
        print(
            f"{trajectory.trajectory_id:>6} {scores[0] * 100:>7.1f}% "
            f"{scores[1] * 100:>9.1f}% {scores[2] * 100:>9.1f}% {scores[3] * 100:>7.1f}%"
        )

    # 6. Inspect one response in detail (diagnostics, latency, cache).
    response = service.route(requests[0])  # repeat query -> served from cache
    print(f"\nQuery {response.request.source} -> {response.request.destination}")
    print(f"  engine       : {response.engine} (cache hit: {response.cache_hit})")
    if response.diagnostics is not None:
        print(
            f"  routing case : {response.diagnostics.case} "
            f"({response.diagnostics.region_hops} region hops)"
        )
    print(f"  path         : {response.path.vertices if response.ok else response.error}")

    stats = service.stats()
    print(
        f"\nServiceStats: {stats.requests} requests, "
        f"cache hit rate {stats.cache_hit_rate:.0%}, "
        f"p50 latency {stats.latency_p50_s * 1e3:.2f} ms, "
        f"p95 latency {stats.latency_p95_s * 1e3:.2f} ms"
    )

    # 7. Debug runs can wrap traffic under the coherence sanitizer: every
    #    cache hit served inside the block is checked against the live
    #    version counters, so stale replays surface immediately.
    from repro.analysis import sanitize

    with sanitize() as sanitizer:
        for request in requests[:10]:
            service.route(request)
    sanitizer.assert_clean()
    print(f"\nCoherence sanitizer: {len(sanitizer.findings)} stale cache hits")

    # 8. Degraded mode: when every live engine fails (crash, timeout, open
    #    circuit breaker), the service answers with the last known good
    #    route for the OD pair instead of an error — flagged, never
    #    silently.  FaultInjector scripts the failure deterministically.
    from repro.service import FaultInjector, FunctionEngine
    from repro.routing import fastest_path

    injector = FaultInjector(seed=7)
    flaky = injector.engine(
        FunctionEngine(network, lambda s, d: fastest_path(network, s, d), name="flaky"),
        script=["ok", "error"],  # first call answers, second one crashes
    )
    resilient = RoutingService(enable_cache=False)
    resilient.register("flaky", flaky)
    check_request = RouteRequest(requests[0].source, requests[0].destination)
    resilient.route(check_request)  # the good answer primes the stale store
    degraded = resilient.route(check_request)  # the crash degrades, not errors
    print(
        f"\nDegraded mode: ok={degraded.ok} degraded={degraded.degraded} "
        f"case={degraded.diagnostics.case} "
        f"served_cost_version={degraded.diagnostics.served_cost_version}"
    )
    print(f"  degraded responses counted: {resilient.stats().degraded_responses}")

    # 9. Persist the fitted model; a serving process reloads it instantly.
    with tempfile.TemporaryDirectory() as tmp:
        model_file = Path(tmp) / "l2r-model.pkl.gz"
        pipeline.save(model_file)
        restored = LearnToRoute.load(model_file)
        check = requests[0]
        same = (
            pipeline.route(check.source, check.destination).vertices
            == restored.route(check.source, check.destination).vertices
        )
        print(f"\nSaved {model_file.stat().st_size:,} bytes; reloaded routes identical: {same}")


if __name__ == "__main__":
    main()
