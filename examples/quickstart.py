"""Quickstart: fit learn-to-route on a small synthetic city and route with it.

Run with::

    python examples/quickstart.py

The script builds a small synthetic road network with simulated taxi
trajectories, fits the L2R pipeline (region graph + preference learning +
transfer), answers a few routing requests, and compares the answers against
the paths the simulated local drivers actually took.
"""

from __future__ import annotations

from repro import LearnToRoute
from repro.baselines import FastestBaseline, ShortestBaseline
from repro.datasets import tiny_scenario
from repro.datasets.splits import split_by_id
from repro.preferences import path_similarity


def main() -> None:
    # 1. A synthetic scenario: a 10x10 city grid plus 120 simulated trips.
    scenario = tiny_scenario(seed=3, n_trajectories=120)
    network = scenario.network
    print(f"Network: {network.vertex_count} vertices, {network.edge_count} edges")
    print(f"Trajectories: {len(scenario.trajectories)}")

    # 2. Temporal-style train / test split.
    split = split_by_id(scenario.trajectories, train_fraction=0.75)
    print(f"Training on {len(split.train)} trajectories, testing on {len(split.test)}")

    # 3. Fit the L2R pipeline (Steps 1-3 of the paper).
    pipeline = LearnToRoute().fit(network, split.train)
    region_graph = pipeline.region_graph
    print(
        f"Region graph: {region_graph.region_count} regions, "
        f"{len(region_graph.t_edges())} T-edges, {len(region_graph.b_edges())} B-edges, "
        f"connected={region_graph.is_connected()}"
    )
    timings = pipeline.offline_timings
    print(f"Offline processing: {timings.total_s:.2f} s total")

    # 4. Route a few test queries and compare with the drivers' actual paths.
    shortest = ShortestBaseline(network)
    fastest = FastestBaseline(network)
    print("\nPer-query Eq. 1 similarity against the driver's actual path:")
    print(f"{'query':>6} {'L2R':>8} {'Shortest':>10} {'Fastest':>10}")
    for trajectory in split.test[:8]:
        l2r_path = pipeline.route(trajectory.source, trajectory.destination)
        row = (
            path_similarity(network, trajectory.path, l2r_path),
            path_similarity(
                network, trajectory.path, shortest.route(trajectory.source, trajectory.destination)
            ),
            path_similarity(
                network, trajectory.path, fastest.route(trajectory.source, trajectory.destination)
            ),
        )
        print(
            f"{trajectory.trajectory_id:>6} {row[0] * 100:>7.1f}% {row[1] * 100:>9.1f}% {row[2] * 100:>9.1f}%"
        )

    # 5. Inspect one recommendation in detail.
    trajectory = split.test[0]
    path, diagnostics = pipeline.route_with_diagnostics(trajectory.source, trajectory.destination)
    print(f"\nQuery {trajectory.source} -> {trajectory.destination}")
    print(f"  routing case : {diagnostics.case} ({diagnostics.region_hops} region hops)")
    print(f"  driver path  : {trajectory.path.vertices}")
    print(f"  L2R path     : {path.vertices}")


if __name__ == "__main__":
    main()
