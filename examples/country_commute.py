"""Country-scale commuting (the paper's D1 / Denmark setting, scaled down).

Run with::

    python examples/country_commute.py

The script builds a multi-city country network connected by motorway and trunk
corridors, simulates commuter trips between the cities, fits L2R, and then
compares it with the simulated commercial routing service (way-point answers
matched with the 10 m band of Fig. 14) and with the cost-centric baselines on
long-distance trips — the setting where the paper reports the largest gap
between trajectory-based and cost-centric routing.
"""

from __future__ import annotations

from repro.baselines import (
    ExternalRoutingService,
    FastestBaseline,
    ShortestBaseline,
    waypoint_accuracy,
)
from repro.core import LearnToRoute
from repro.datasets import d1_like_scenario
from repro.datasets.splits import split_by_id
from repro.preferences import path_similarity


def main() -> None:
    scenario = d1_like_scenario(scale=0.3)
    network = scenario.network
    print(
        f"D1-like scenario: {network.vertex_count} vertices, {network.edge_count} edges, "
        f"{len(scenario.trajectories)} trips"
    )

    split = split_by_id(scenario.trajectories, train_fraction=0.75)
    pipeline = LearnToRoute().fit(network, split.train)
    print(
        f"Region graph: {pipeline.region_graph.region_count} regions, "
        f"{len(pipeline.region_graph.t_edges())} T-edges, {len(pipeline.region_graph.b_edges())} B-edges"
    )

    service = ExternalRoutingService(network)
    shortest = ShortestBaseline(network)
    fastest = FastestBaseline(network)

    # Focus on the longest test trips (the paper's (10,50] and above bands).
    long_trips = sorted(split.test, key=lambda t: -t.distance_km(network))[:20]
    sums = {"L2R": 0.0, "Shortest": 0.0, "Fastest": 0.0, "Google": 0.0}
    for trajectory in long_trips:
        source, destination = trajectory.source, trajectory.destination
        sums["L2R"] += path_similarity(network, trajectory.path, pipeline.route(source, destination))
        sums["Shortest"] += path_similarity(
            network, trajectory.path, shortest.route(source, destination)
        )
        sums["Fastest"] += path_similarity(
            network, trajectory.path, fastest.route(source, destination)
        )
        sums["Google"] += waypoint_accuracy(
            network, trajectory.path, service.directions(source, destination), band_m=10.0
        )

    print(f"\nMean Eq. 1 accuracy over the {len(long_trips)} longest test trips:")
    for name, total in sorted(sums.items(), key=lambda item: -item[1]):
        print(f"  {name:<10} {100.0 * total / len(long_trips):6.1f} %")

    trajectory = long_trips[0]
    path, diagnostics = pipeline.route_with_diagnostics(trajectory.source, trajectory.destination)
    print(
        f"\nLongest trip ({trajectory.distance_km(network):.1f} km): routed as case "
        f"'{diagnostics.case}' over {diagnostics.region_hops} region hops "
        f"({diagnostics.used_b_edges} B-edges)"
    )


if __name__ == "__main__":
    main()
