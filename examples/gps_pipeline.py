"""The full GPS pipeline: emit raw GPS records, map match, build the region graph.

Run with::

    python examples/gps_pipeline.py

The other examples feed ground-truth paths straight into L2R.  This one walks
the complete chain the paper's real data went through: ground-truth drives are
sampled into noisy GPS records (1 Hz, like the paper's D1 fleet), the HMM map
matcher aligns them back onto the road network, the matched trajectories are
saved to / loaded from disk, and the region graph is built from them.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import LearnToRoute
from repro.datasets import tiny_scenario
from repro.preferences import path_similarity
from repro.trajectories import (
    HMMMapMatcher,
    high_frequency_sampler,
    load_matched_jsonl,
    sample_path,
    save_matched_jsonl,
    save_raw_csv,
)


def main() -> None:
    scenario = tiny_scenario(seed=3, n_trajectories=60)
    network = scenario.network

    # 1. Emit noisy 1 Hz GPS records for every ground-truth drive.
    sampler = high_frequency_sampler(noise_std_m=5.0)
    raw = [
        sample_path(
            network,
            trajectory.path,
            sampler,
            trajectory_id=trajectory.trajectory_id,
            driver_id=trajectory.driver_id,
            departure_time=trajectory.departure_time,
        )
        for trajectory in scenario.trajectories
    ]
    total_records = sum(len(t) for t in raw)
    print(f"Emitted {total_records} GPS records for {len(raw)} trajectories")

    # 2. Map match the raw records back onto the road network.
    matcher = HMMMapMatcher(network)
    matched = matcher.match_many(raw)
    quality = sum(
        path_similarity(network, truth.path, result.path)
        for truth, result in zip(scenario.trajectories, matched)
    ) / len(matched)
    print(f"Map matched {len(matched)} trajectories; mean alignment quality {quality * 100:.1f} %")

    # 3. Persist and reload the data (CSV for raw GPS, JSON Lines for matched).
    with tempfile.TemporaryDirectory() as tmp:
        raw_file = Path(tmp) / "gps.csv"
        matched_file = Path(tmp) / "matched.jsonl"
        save_raw_csv(raw, raw_file)
        save_matched_jsonl(matched, matched_file)
        reloaded = load_matched_jsonl(matched_file)
        print(f"Wrote {raw_file.stat().st_size} bytes of raw GPS, reloaded {len(reloaded)} matched trips")

    # 4. Fit L2R on the map-matched trajectories.
    pipeline = LearnToRoute().fit(network, matched)
    print(
        f"Region graph from map-matched data: {pipeline.region_graph.region_count} regions, "
        f"{len(pipeline.region_graph.t_edges())} T-edges"
    )
    query = matched[0]
    path = pipeline.route(query.source, query.destination)
    print(f"Example route {query.source} -> {query.destination}: {len(path)} vertices")


if __name__ == "__main__":
    main()
