"""City-scale taxi routing (the paper's D2 / Chengdu setting, scaled down).

Run with::

    python examples/city_taxi_routing.py

The script simulates a dense city grid with taxi trips concentrated around
hotspots, fits L2R, and reproduces a miniature version of the paper's
evaluation: accuracy of L2R / Shortest / Fastest / TRIP against the drivers'
actual paths, broken down by travel distance and by region category, plus the
Table II / Table IV data statistics.
"""

from __future__ import annotations

from repro.baselines import FastestBaseline, ShortestBaseline, TripBaseline
from repro.core import LearnToRoute
from repro.datasets import d2_like_scenario
from repro.datasets.splits import split_by_id
from repro.evaluation import EvaluationHarness, format_accuracy_table
from repro.regions import format_region_size_table, region_size_table
from repro.trajectories import distance_band_statistics, format_distance_table


def main() -> None:
    scenario = d2_like_scenario(scale=0.15)
    network = scenario.network
    print(f"D2-like scenario: {network.vertex_count} vertices, {len(scenario.trajectories)} taxi trips")

    stats = distance_band_statistics(scenario.trajectories, network, scenario.bands_km)
    print()
    print(format_distance_table(stats, title="Trip distance distribution (Table II style)"))

    split = split_by_id(scenario.trajectories, train_fraction=0.75)
    pipeline = LearnToRoute().fit(network, split.train)

    rows = region_size_table(list(pipeline.region_graph.regions()), network)
    print()
    print(format_region_size_table(rows, title="Region sizes (Table IV style)"))

    # Every compared method goes through the same RoutingEngine request path
    # the RoutingService serves in production.
    harness = EvaluationHarness(
        network=network, region_graph=pipeline.region_graph, bands_km=scenario.bands_km
    )
    harness.add_engine(pipeline.as_engine())
    harness.add_engine(ShortestBaseline(network).as_engine())
    harness.add_engine(FastestBaseline(network).as_engine())
    harness.add_engine(TripBaseline(network, split.train).as_engine())
    report = harness.evaluate(split.test, max_queries=50)

    print()
    print(format_accuracy_table(report.by_distance(), "Accuracy (Eq. 1) by distance band"))
    print()
    print(format_accuracy_table(report.by_region(), "Accuracy (Eq. 1) by region category"))
    print()
    print(format_accuracy_table(report.overall(), "Per-query run time", value="runtime"))


if __name__ == "__main__":
    main()
