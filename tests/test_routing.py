"""Tests for the routing substrate: costs, Path, Dijkstra, A*, bidirectional, CH."""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkError, NoPathError, VertexNotFoundError
from repro.network import RoadNetwork, RoadType
from repro.routing import (
    CostFeature,
    Path,
    astar_by_feature,
    bidirectional_by_feature,
    build_contraction_hierarchy,
    ch_shortest_path,
    cost_function,
    dijkstra,
    dijkstra_costs,
    fastest_path,
    fuel_consumption_ml,
    fuel_per_km_ml,
    lowest_cost_path,
    most_economical_speed_kmh,
    shortest_path,
    splice_all,
    weighted_cost,
)


class TestCosts:
    def test_cost_function_distance(self, line_network):
        edge = line_network.edge(0, 1)
        assert cost_function(CostFeature.DISTANCE)(edge) == edge.distance_m

    def test_cost_function_travel_time(self, line_network):
        edge = line_network.edge(0, 1)
        assert cost_function(CostFeature.TRAVEL_TIME)(edge) == edge.travel_time_s

    def test_cost_function_fuel(self, line_network):
        edge = line_network.edge(0, 1)
        assert cost_function(CostFeature.FUEL)(edge) == edge.fuel_ml

    def test_weighted_cost_combines(self, line_network):
        edge = line_network.edge(0, 1)
        combined = weighted_cost({CostFeature.DISTANCE: 1.0, CostFeature.TRAVEL_TIME: 2.0})
        assert combined(edge) == pytest.approx(edge.distance_m + 2.0 * edge.travel_time_s)

    def test_short_names(self):
        assert CostFeature.DISTANCE.short_name == "DI"
        assert CostFeature.TRAVEL_TIME.short_name == "TT"
        assert CostFeature.FUEL.short_name == "FC"


class TestFuelModel:
    def test_fuel_positive(self):
        assert fuel_consumption_ml(1000.0, 50.0) > 0

    def test_fuel_per_km_convex(self):
        # Fuel per km should be high at very low and very high speeds.
        slow = fuel_per_km_ml(10.0)
        optimal = fuel_per_km_ml(most_economical_speed_kmh())
        fast = fuel_per_km_ml(130.0)
        assert optimal < slow
        assert optimal < fast

    def test_economical_speed_in_sensible_range(self):
        assert 40.0 <= most_economical_speed_kmh() <= 90.0

    def test_more_distance_more_fuel(self):
        assert fuel_consumption_ml(2000.0, 60.0) > fuel_consumption_ml(1000.0, 60.0)


class TestPath:
    def test_empty_path_rejected(self):
        with pytest.raises(NetworkError):
            Path(vertices=())

    def test_single_vertex_path_is_trivial(self):
        path = Path.of([7])
        assert path.is_trivial
        assert path.source == path.destination == 7

    def test_edge_keys(self):
        path = Path.of([1, 2, 3])
        assert path.edge_keys == ((1, 2), (2, 3))

    def test_costs(self, line_network):
        path = Path.of([0, 1, 2])
        assert path.distance_m(line_network) == pytest.approx(2_000.0)
        assert path.travel_time_s(line_network) > 0

    def test_is_valid(self, line_network):
        assert Path.of([0, 1, 2]).is_valid(line_network)
        assert not Path.of([0, 2]).is_valid(line_network)

    def test_splice(self):
        combined = Path.of([1, 2, 3]).splice(Path.of([3, 4]))
        assert combined.vertices == (1, 2, 3, 4)

    def test_splice_mismatch_raises(self):
        with pytest.raises(NetworkError):
            Path.of([1, 2]).splice(Path.of([3, 4]))

    def test_splice_all(self):
        result = splice_all([Path.of([1, 2]), Path.of([2, 3]), Path.of([3, 4])])
        assert result.vertices == (1, 2, 3, 4)

    def test_splice_all_empty_raises(self):
        with pytest.raises(NetworkError):
            splice_all([])

    def test_sub_path(self):
        path = Path.of([1, 2, 3, 4, 5])
        assert path.sub_path(2, 4).vertices == (2, 3, 4)

    def test_sub_path_missing_raises(self):
        with pytest.raises(NetworkError):
            Path.of([1, 2, 3]).sub_path(3, 1)

    def test_reversed(self):
        assert Path.of([1, 2, 3]).reversed().vertices == (3, 2, 1)

    def test_contains_edge(self):
        path = Path.of([1, 2, 3])
        assert path.contains_edge(1, 2)
        assert not path.contains_edge(2, 1)

    def test_coordinates(self, line_network):
        coords = Path.of([0, 1]).coordinates(line_network)
        assert coords[0] == line_network.coordinates(0)


class TestDijkstra:
    def test_shortest_prefers_local_chain(self, line_network):
        # Residential chain 0-1-2-3-4 is 4 km; the motorway detour is 5.2 km.
        path = shortest_path(line_network, 0, 4)
        assert path.vertices == (0, 1, 2, 3, 4)

    def test_fastest_prefers_motorway(self, line_network):
        path = fastest_path(line_network, 0, 4)
        assert path.vertices == (0, 9, 4)

    def test_same_source_destination(self, line_network):
        assert shortest_path(line_network, 2, 2).is_trivial

    def test_unknown_vertex_raises(self, line_network):
        with pytest.raises(VertexNotFoundError):
            shortest_path(line_network, 0, 999)

    def test_no_path_raises(self):
        network = RoadNetwork()
        network.add_vertex(1, 10.0, 56.0)
        network.add_vertex(2, 10.1, 56.0)
        with pytest.raises(NoPathError):
            shortest_path(network, 1, 2)

    def test_edge_filter(self, line_network):
        # Forbid motorways: fastest must fall back to the residential chain.
        path = dijkstra(
            line_network,
            0,
            4,
            cost_function(CostFeature.TRAVEL_TIME),
            edge_filter=lambda e: e.road_type is not RoadType.MOTORWAY,
        )
        assert path.vertices == (0, 1, 2, 3, 4)

    def test_dijkstra_costs_all(self, line_network):
        costs = dijkstra_costs(line_network, 0, cost_function(CostFeature.DISTANCE))
        assert costs[0] == 0.0
        assert costs[4] == pytest.approx(4_000.0)

    def test_dijkstra_costs_targets_early_stop(self, line_network):
        costs = dijkstra_costs(line_network, 0, cost_function(CostFeature.DISTANCE), targets={1})
        assert costs[1] == pytest.approx(1_000.0)

    def test_lowest_cost_path_matches_per_feature(self, line_network):
        assert lowest_cost_path(line_network, 0, 4, CostFeature.DISTANCE).vertices == (0, 1, 2, 3, 4)
        assert lowest_cost_path(line_network, 0, 4, CostFeature.TRAVEL_TIME).vertices == (0, 9, 4)

    def test_path_is_valid_on_grid(self, grid_network):
        path = shortest_path(grid_network, 0, 99)
        assert path.is_valid(grid_network)
        assert path.source == 0 and path.destination == 99


class TestAlternativeAlgorithms:
    @pytest.mark.parametrize("feature", [CostFeature.DISTANCE, CostFeature.TRAVEL_TIME, CostFeature.FUEL])
    def test_astar_matches_dijkstra_cost(self, grid_network, feature):
        source, destination = 0, 99
        dijkstra_path = lowest_cost_path(grid_network, source, destination, feature)
        astar_path = astar_by_feature(grid_network, source, destination, feature)
        cost = cost_function(feature)
        dijkstra_cost = sum(cost(e) for e in grid_network.path_edges(dijkstra_path.vertices))
        astar_cost = sum(cost(e) for e in grid_network.path_edges(astar_path.vertices))
        assert astar_cost == pytest.approx(dijkstra_cost, rel=1e-9)

    @pytest.mark.parametrize("feature", [CostFeature.DISTANCE, CostFeature.TRAVEL_TIME])
    def test_bidirectional_matches_dijkstra_cost(self, grid_network, feature):
        source, destination = 5, 87
        reference = lowest_cost_path(grid_network, source, destination, feature)
        candidate = bidirectional_by_feature(grid_network, source, destination, feature)
        cost = cost_function(feature)
        ref_cost = sum(cost(e) for e in grid_network.path_edges(reference.vertices))
        cand_cost = sum(cost(e) for e in grid_network.path_edges(candidate.vertices))
        assert cand_cost == pytest.approx(ref_cost, rel=1e-9)
        assert candidate.is_valid(grid_network)

    def test_bidirectional_trivial(self, grid_network):
        assert bidirectional_by_feature(grid_network, 3, 3).is_trivial

    def test_astar_trivial(self, grid_network):
        assert astar_by_feature(grid_network, 3, 3).is_trivial


class TestContractionHierarchy:
    @pytest.fixture()
    def hierarchy(self, line_network):
        return build_contraction_hierarchy(line_network, CostFeature.TRAVEL_TIME)

    def test_query_cost_matches_dijkstra(self, line_network, hierarchy):
        reference = fastest_path(line_network, 0, 4).travel_time_s(line_network)
        assert hierarchy.query_cost(0, 4) == pytest.approx(reference, rel=1e-9)

    def test_query_path_valid_and_optimal(self, line_network, hierarchy):
        path = ch_shortest_path(line_network, 0, 4, hierarchy)
        assert path.is_valid(line_network)
        assert path.travel_time_s(line_network) == pytest.approx(
            fastest_path(line_network, 0, 4).travel_time_s(line_network), rel=1e-9
        )

    def test_query_same_vertex(self, line_network, hierarchy):
        assert hierarchy.query_cost(2, 2) == 0.0
        assert ch_shortest_path(line_network, 2, 2, hierarchy).is_trivial

    def test_grid_queries_match_dijkstra(self, demo_network):
        hierarchy = build_contraction_hierarchy(demo_network, CostFeature.DISTANCE)
        pairs = [(0, 35), (5, 30), (7, 28), (0, 11)]
        for source, destination in pairs:
            reference = shortest_path(demo_network, source, destination)
            candidate = hierarchy.query(source, destination)
            assert candidate.distance_m(demo_network) == pytest.approx(
                reference.distance_m(demo_network), rel=1e-6
            )
            assert candidate.is_valid(demo_network)
