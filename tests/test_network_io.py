"""Tests for road-network serialization (JSON) and the OSM XML loader."""

from __future__ import annotations

import pytest

from repro.network import RoadType, load_json, load_osm_xml, save_json

OSM_SAMPLE = """<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6">
  <node id="1" lat="56.000" lon="10.000"/>
  <node id="2" lat="56.001" lon="10.001"/>
  <node id="3" lat="56.002" lon="10.002"/>
  <node id="4" lat="56.003" lon="10.003"/>
  <node id="5" lat="56.010" lon="10.010"/>
  <way id="100">
    <nd ref="1"/><nd ref="2"/><nd ref="3"/>
    <tag k="highway" v="primary"/>
    <tag k="maxspeed" v="60"/>
  </way>
  <way id="101">
    <nd ref="3"/><nd ref="4"/>
    <tag k="highway" v="residential"/>
    <tag k="oneway" v="yes"/>
  </way>
  <way id="102">
    <nd ref="4"/><nd ref="5"/>
    <tag k="building" v="yes"/>
  </way>
  <way id="103">
    <nd ref="2"/><nd ref="4"/>
    <tag k="highway" v="motorway_link"/>
  </way>
</osm>
"""


class TestJsonRoundTrip:
    def test_round_trip_preserves_structure(self, tmp_path, grid_network):
        target = tmp_path / "network.json"
        save_json(grid_network, target)
        loaded = load_json(target)
        assert loaded.vertex_count == grid_network.vertex_count
        assert loaded.edge_count == grid_network.edge_count
        for edge in list(grid_network.edges())[:20]:
            other = loaded.edge(edge.source, edge.target)
            assert other.distance_m == pytest.approx(edge.distance_m)
            assert other.road_type is edge.road_type
            assert other.travel_time_s == pytest.approx(edge.travel_time_s)

    def test_version_check(self, tmp_path, grid_network):
        target = tmp_path / "network.json"
        save_json(grid_network, target)
        content = target.read_text().replace('"format_version": 1', '"format_version": 99')
        target.write_text(content)
        with pytest.raises(ValueError):
            load_json(target)


class TestOsmLoader:
    @pytest.fixture()
    def osm_file(self, tmp_path):
        path = tmp_path / "sample.osm"
        path.write_text(OSM_SAMPLE)
        return path

    def test_loads_highway_ways_only(self, osm_file):
        network = load_osm_xml(osm_file)
        # Node 5 is only referenced by the building way and must be excluded.
        assert 5 not in network
        assert network.vertex_count == 4

    def test_bidirectional_by_default(self, osm_file):
        network = load_osm_xml(osm_file)
        assert network.has_edge(1, 2) and network.has_edge(2, 1)

    def test_oneway_respected(self, osm_file):
        network = load_osm_xml(osm_file)
        assert network.has_edge(3, 4)
        assert not network.has_edge(4, 3)

    def test_maxspeed_applied(self, osm_file):
        network = load_osm_xml(osm_file)
        assert network.edge(1, 2).speed_kmh == pytest.approx(60.0)

    def test_link_tag_maps_to_parent_class(self, osm_file):
        network = load_osm_xml(osm_file)
        assert network.edge(2, 4).road_type is RoadType.MOTORWAY

    def test_road_types(self, osm_file):
        network = load_osm_xml(osm_file)
        assert network.edge(1, 2).road_type is RoadType.PRIMARY
        assert network.edge(3, 4).road_type is RoadType.RESIDENTIAL
