"""The runtime coherence sanitizer (:mod:`repro.analysis.sanitizer`).

Covers both probes with a deliberately engineered violation each — a
version-0 cost artifact replayed after a live-traffic patch, and a stale
frozen hierarchy answering under ``on_stale="ignore"`` — plus the negative
property that matters most in practice: a well-behaved
:class:`~repro.service.RoutingService` route → update → route cycle records
**zero** findings, and the probes come off cleanly afterwards.
"""

from __future__ import annotations

import pytest

from repro.analysis import CoherenceViolation, sanitize
from repro.network import grid_city_network
from repro.network.compiled import dispatch
from repro.network.compiled.graph import CostStore
from repro.routing import CostFeature, build_contraction_hierarchy, ch_shortest_path
from repro.service import ContractionEngine, RouteRequest, RoutingService


def _bump_cost(network, factor: float = 3.0) -> None:
    """Patch one edge's travel time, bumping the cost version by one."""
    edge = next(network.edges())
    network.update_edge_costs(
        {(edge.source, edge.target): {"travel_time_s": edge.travel_time_s * factor}}
    )


class TestCostStoreProbe:
    def _stale_replay(self, sanitizer_kwargs=None):
        """Cache a weight list at version 0, patch costs, replay version 0."""
        network = grid_city_network(rows=4, cols=4, seed=1)
        store = network.compiled().costs
        key = ("attr", "travel_time_s")
        array = store.array("travel_time_s")
        stale_stamp = store.version
        store.forward_weights(key, array, version=stale_stamp)
        _bump_cost(network)
        assert store.version == stale_stamp + 1
        with sanitize(**(sanitizer_kwargs or {})) as sanitizer:
            # The entry's stamp matches the caller's claimed version, so the
            # real lookup serves it as a hit — an artifact from before the
            # patch answering after it.  This is what the probe exists for.
            store.forward_weights(key, array, version=stale_stamp)
        return sanitizer, stale_stamp

    def test_detects_deliberate_stale_cache_hit(self):
        sanitizer, stale_stamp = self._stale_replay()
        assert not sanitizer.ok
        (finding,) = sanitizer.findings
        assert finding.kind == "stale-cost-cache-hit"
        assert finding.stamp == stale_stamp
        assert finding.live_version == stale_stamp + 1
        assert "travel_time_s" in finding.detail
        assert str(stale_stamp) in finding.describe()

    def test_assert_clean_raises_on_findings(self):
        sanitizer, _ = self._stale_replay()
        with pytest.raises(CoherenceViolation) as excinfo:
            sanitizer.assert_clean()
        assert excinfo.value.finding is sanitizer.findings[0]

    def test_strict_mode_raises_at_the_stale_hit(self):
        with pytest.raises(CoherenceViolation):
            self._stale_replay(sanitizer_kwargs={"strict": True})

    def test_current_version_hits_are_not_flagged(self):
        network = grid_city_network(rows=4, cols=4, seed=2)
        store = network.compiled().costs
        key = ("attr", "travel_time_s")
        array = store.array("travel_time_s")
        with sanitize() as sanitizer:
            first = store.forward_weights(key, array, version=store.version)
            again = store.forward_weights(key, array, version=store.version)
        assert again == first
        sanitizer.assert_clean()

    def test_topology_stamped_memo_hits_are_not_flagged(self):
        network = grid_city_network(rows=4, cols=4, seed=3)
        store = network.compiled().costs
        store.memo("topo-artifact", lambda: object(), cost_dependent=False)
        _bump_cost(network)
        with sanitize() as sanitizer:
            # Topology-only artifacts never expire; replaying one after a
            # cost patch is correct and must stay silent.
            store.memo("topo-artifact", lambda: object(), cost_dependent=False)
        sanitizer.assert_clean()


class TestHierarchyProbe:
    def test_detects_ignored_stale_hierarchy_query(self):
        network = grid_city_network(rows=5, cols=5, seed=4)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)  # warm compiled arcs
        _bump_cost(network)
        assert hierarchy.is_stale(network)
        with sanitize() as sanitizer:
            ch_shortest_path(network, ids[0], ids[-1], hierarchy, on_stale="ignore")
        kinds = [finding.kind for finding in sanitizer.findings]
        assert "stale-hierarchy-query" in kinds
        finding = sanitizer.findings[kinds.index("stale-hierarchy-query")]
        assert finding.stamp == hierarchy.built_version
        assert finding.live_version == network.version

    def test_rebuild_mode_stays_clean(self):
        network = grid_city_network(rows=5, cols=5, seed=5)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        _bump_cost(network)
        with sanitize() as sanitizer:
            ch_shortest_path(network, ids[0], ids[-1], hierarchy, on_stale="rebuild")
        sanitizer.assert_clean()
        assert not hierarchy.is_stale(network)


class TestCleanServiceCycle:
    def test_route_update_route_records_nothing(self):
        network = grid_city_network(rows=6, cols=6, seed=9)
        service = RoutingService()
        service.register("CH", ContractionEngine(network), default=True)
        try:
            with sanitize() as sanitizer:
                first = service.route(RouteRequest(source=0, destination=35))
                assert first.ok
                assert service.route(RouteRequest(source=0, destination=35)).cache_hit
                _bump_cost(network, factor=50.0)
                second = service.route(RouteRequest(source=0, destination=35))
                assert second.ok and not second.cache_hit
                third = service.route(RouteRequest(source=1, destination=34))
                assert third.ok
            sanitizer.assert_clean()
        finally:
            service.close()


class TestProbeLifecycle:
    def test_probes_installed_and_restored(self):
        original_cached = CostStore._cached
        original_try_ch = dispatch.try_ch
        with sanitize():
            assert CostStore._cached is not original_cached
            assert dispatch.try_ch is not original_try_ch
            assert CostStore._cached.__wrapped__ is original_cached
            assert dispatch.try_ch.__wrapped__ is original_try_ch
        assert CostStore._cached is original_cached
        assert dispatch.try_ch is original_try_ch

    def test_probes_restored_on_error(self):
        original_cached = CostStore._cached
        original_try_ch = dispatch.try_ch
        with pytest.raises(RuntimeError, match="boom"):
            with sanitize():
                raise RuntimeError("boom")
        assert CostStore._cached is original_cached
        assert dispatch.try_ch is original_try_ch

    def test_nested_contexts_unwind_in_order(self):
        original_cached = CostStore._cached
        with sanitize() as outer:
            with sanitize() as inner:
                pass
            assert CostStore._cached is not original_cached  # outer still armed
            assert outer is not inner
        assert CostStore._cached is original_cached
