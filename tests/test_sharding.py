"""Sharded multi-process serving (:mod:`repro.service.sharding`).

Three layers of guarantees:

* **plan** — every vertex lands in exactly one shard, boundary vertices are
  exactly the endpoints of cut edges, sub-networks are faithful induced
  copies;
* **overlay** — cross-shard stitching through the boundary overlay is
  *cost-identical* to full-network Dijkstra, on randomized grids, for every
  cost feature, and stays identical through randomized live-traffic
  sequences (the property tests);
* **service** — the spawn-based deployment serves the same answers as an
  in-process reference, survives a worker crash mid-batch with identical
  results, honors the traffic ack barrier, and leaks no shared-memory
  segment on shutdown.

The multi-process tests boot real worker processes (slow on a cold
interpreter), so they share one deployment per scenario and keep the grids
small.
"""

from __future__ import annotations

import math
import queue
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, NetworkError, ShardingError
from repro.network import grid_city_network
from repro.network.compiled import shm
from repro.routing import CostFeature, cost_function, dijkstra
from repro.service import (
    RouteRequest,
    RoutingService,
    ShardedRoutingService,
    build_shard_plan,
)
from repro.service.sharding import (
    BoundaryOverlay,
    CostDiff,
    CrossShardRouter,
    QueueTransport,
)
from repro.service.sharding.overlay import path_cost
from repro.traffic import TrafficFeed
from repro.traffic.updates import TrafficUpdate

ALL_FEATURES = (CostFeature.DISTANCE, CostFeature.TRAVEL_TIME, CostFeature.FUEL)


def _segment_exists(name: str) -> bool:
    try:
        probe = shm._attach_untracked(name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


def _reference_cost(network, source, destination, feature) -> float:
    try:
        path = dijkstra(network, source, destination, cost_function(feature))
    except Exception:
        return math.inf
    return path_cost(network, tuple(path), feature)


# -------------------------------------------------------------------- #
# Shard plans
# -------------------------------------------------------------------- #
class TestShardPlan:
    def test_partition_covers_every_vertex_exactly_once(self):
        network = grid_city_network(5, 5)
        plan = build_shard_plan(network, 3)
        seen = [v for shard in plan.shards for v in shard]
        assert sorted(seen) == sorted(network.vertex_ids())
        assert len(seen) == len(set(seen))
        assert plan.shard_count == 3

    def test_boundary_is_exactly_the_cut_edge_endpoints(self):
        network = grid_city_network(4, 6)
        plan = build_shard_plan(network, 2)
        endpoints = set()
        for source, target in plan.cut_edges:
            assert plan.shard_of(source) != plan.shard_of(target)
            endpoints.add(source)
            endpoints.add(target)
        assert plan.boundary_vertices == frozenset(endpoints)
        for shard_id, boundary in enumerate(plan.boundary):
            assert all(plan.shard_of(v) == shard_id for v in boundary)
            assert list(boundary) == sorted(boundary)

    def test_subnetwork_is_a_faithful_induced_copy(self):
        network = grid_city_network(4, 4)
        plan = build_shard_plan(network, 2)
        sub = plan.subnetwork(network, 0)
        members = set(plan.shards[0])
        assert set(sub.vertex_ids()) == members
        for edge in sub.edges():
            original = network.edge(edge.source, edge.target)
            assert edge.distance_m == original.distance_m
            assert edge.travel_time_s == original.travel_time_s
            assert edge.fuel_ml == original.fuel_ml
            assert edge.road_type == original.road_type
        expected = sum(
            1
            for e in network.edges()
            if e.source in members and e.target in members
        )
        assert sum(1 for _ in sub.edges()) == expected

    def test_unknown_vertex_has_no_shard(self):
        network = grid_city_network(3, 3)
        plan = build_shard_plan(network, 2)
        assert plan.shard_of(10_000) is None

    def test_infeasible_shard_count_is_refused(self):
        network = grid_city_network(2, 2)
        with pytest.raises(NetworkError):
            build_shard_plan(network, 5)

    def test_bfs_method_partitions_too(self):
        network = grid_city_network(4, 4)
        plan = build_shard_plan(network, 3, method="bfs")
        assert plan.method == "bfs"
        assert sorted(v for s in plan.shards for v in s) == sorted(
            network.vertex_ids()
        )


# -------------------------------------------------------------------- #
# Boundary overlay: exact cross-shard stitching (property tests)
# -------------------------------------------------------------------- #
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=st.integers(min_value=3, max_value=5),
    cols=st.integers(min_value=3, max_value=5),
    shard_count=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_cross_shard_routing_is_cost_identical_on_random_grids(
    rows, cols, shard_count, seed
):
    network = grid_city_network(rows, cols, seed=seed % 1000)
    plan = build_shard_plan(network, shard_count)
    router = CrossShardRouter(network, BoundaryOverlay(network, plan))
    rng = random.Random(seed)
    vertices = sorted(network.vertex_ids())
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(10)
    ]
    for feature in ALL_FEATURES:
        answers = router.route_pairs(pairs, feature)
        assert answers is not None
        for (source, destination), (path_vertices, _) in zip(pairs, answers):
            expected = _reference_cost(network, source, destination, feature)
            got = (
                path_cost(network, path_vertices, feature)
                if path_vertices is not None
                else math.inf
            )
            assert math.isclose(got, expected, rel_tol=1e-9) or (
                math.isinf(got) and math.isinf(expected)
            ), (source, destination, feature, got, expected)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rounds=st.integers(min_value=1, max_value=3),
)
def test_identity_survives_randomized_traffic_sequences(seed, rounds):
    network = grid_city_network(4, 4, seed=seed % 100)
    plan = build_shard_plan(network, 3)
    overlay = BoundaryOverlay(network, plan)
    router = CrossShardRouter(network, overlay)
    feed = TrafficFeed(network)
    rng = random.Random(seed)
    vertices = sorted(network.vertex_ids())
    edges = [(e.source, e.target) for e in network.edges()]
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(8)]
    for _ in range(rounds):
        batch = [
            TrafficUpdate.scale_by(
                *rng.choice(edges),
                travel_time_s=rng.uniform(0.5, 3.0),
                fuel_ml=rng.uniform(0.8, 1.5),
            )
            for _ in range(6)
        ]
        result = feed.apply(batch)
        changes = {
            key: {
                attr: float(getattr(network.edge(*key), attr))
                for attr in ("distance_m", "travel_time_s", "fuel_ml")
            }
            for key in result.touched_edges
        }
        overlay.apply(changes)
        for feature in ALL_FEATURES:
            answers = router.route_pairs(pairs, feature)
            assert answers is not None
            for (source, destination), (path_vertices, _) in zip(pairs, answers):
                expected = _reference_cost(network, source, destination, feature)
                got = (
                    path_cost(network, path_vertices, feature)
                    if path_vertices is not None
                    else math.inf
                )
                assert math.isclose(got, expected, rel_tol=1e-9), (
                    source,
                    destination,
                    feature,
                    got,
                    expected,
                )


class TestBoundaryOverlay:
    def test_overlay_matrix_matches_reference(self):
        network = grid_city_network(4, 4)
        plan = build_shard_plan(network, 2)
        overlay = BoundaryOverlay(network, plan)
        for feature in ALL_FEATURES:
            matrix, index = overlay.matrix(feature)
            assert set(index) == plan.boundary_vertices
            for source, row in zip(overlay.order, matrix):
                for target, value in zip(overlay.order, row):
                    expected = _reference_cost(network, source, target, feature)
                    assert math.isclose(
                        float(value), expected, rel_tol=1e-9
                    ) or (math.isinf(float(value)) and math.isinf(expected))

    def test_reconstructed_paths_are_walkable(self):
        network = grid_city_network(5, 4)
        plan = build_shard_plan(network, 3)
        router = CrossShardRouter(network, BoundaryOverlay(network, plan))
        rng = random.Random(11)
        vertices = sorted(network.vertex_ids())
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(12)]
        answers = router.route_pairs(pairs, CostFeature.DISTANCE)
        assert answers is not None
        for (source, destination), (path_vertices, _) in zip(pairs, answers):
            assert path_vertices is not None
            assert path_vertices[0] == source
            assert path_vertices[-1] == destination
            for a, b in zip(path_vertices, path_vertices[1:]):
                assert network.has_edge(a, b)


# -------------------------------------------------------------------- #
# Protocol plumbing
# -------------------------------------------------------------------- #
class TestProtocol:
    def test_queue_transport_times_out_instead_of_blocking(self):
        transport = QueueTransport(
            inbox=queue.Queue(), outbox=queue.Queue(), default_timeout_s=0.01
        )
        with pytest.raises(queue.Empty):
            transport.recv()

    def test_queue_transport_round_trip(self):
        inbox: queue.Queue = queue.Queue()
        outbox: queue.Queue = queue.Queue()
        transport = QueueTransport(inbox=inbox, outbox=outbox)
        inbox.put("ping")
        assert transport.recv(timeout_s=1.0) == "ping"
        transport.send("pong")
        assert outbox.get(timeout=1.0) == "pong"

    def test_cost_diff_as_updates(self):
        diff = CostDiff(
            version=3,
            base_version=2,
            changes=(
                ((1, 2), (("travel_time_s", 9.0), ("fuel_ml", 1.5))),
            ),
        )
        assert diff.as_updates() == {(1, 2): {"travel_time_s": 9.0, "fuel_ml": 1.5}}


# -------------------------------------------------------------------- #
# The multi-process deployment
# -------------------------------------------------------------------- #
def _costs(network, responses, feature):
    return [
        path_cost(network, tuple(r.path), feature) if r.path else math.inf
        for r in responses
    ]


class TestShardedService:
    @pytest.mark.parametrize("transport", ["queue", "tcp"])
    def test_end_to_end_identity_traffic_and_crash_recovery(self, transport):
        network = grid_city_network(6, 6, seed=3)
        rng = random.Random(7)
        vertices = sorted(network.vertex_ids())
        requests = [
            RouteRequest(source=rng.choice(vertices), destination=rng.choice(vertices))
            for _ in range(24)
        ]
        with ShardedRoutingService(
            network, shard_count=2, transport=transport
        ) as service:
            segment_name = service.segment_name
            assert segment_name is not None and _segment_exists(segment_name)

            # 1. Cost identity against full-network Dijkstra, both engines.
            for engine, feature in (
                ("Shortest", CostFeature.DISTANCE),
                ("Fastest", CostFeature.TRAVEL_TIME),
            ):
                responses = service.route_many(requests, engine=engine)
                expected = [
                    _reference_cost(network, r.source, r.destination, feature)
                    for r in requests
                ]
                for got, want in zip(_costs(network, responses, feature), expected):
                    assert math.isclose(got, want, rel_tol=1e-9)

            # 2. Error paths stay coordinator-side.
            with pytest.raises(ConfigurationError):
                service.route_many(requests, engine="Teleporter")
            miss = service.route(RouteRequest(source=99_999, destination=0))
            assert miss.path is None and "VertexNotFoundError" in (miss.error or "")

            # 3. Traffic barrier: identity holds right after the acked apply.
            edges = [(e.source, e.target) for e in network.edges()]
            batch = [
                TrafficUpdate.scale_by(
                    *rng.choice(edges), travel_time_s=rng.uniform(1.2, 3.0)
                )
                for _ in range(12)
            ]
            result = service.apply_traffic(batch, wait=True)
            assert result.applied and result.cost_version == network.cost_version
            responses = service.route_many(requests, engine="Fastest")
            expected = [
                _reference_cost(
                    network, r.source, r.destination, CostFeature.TRAVEL_TIME
                )
                for r in requests
            ]
            for got, want in zip(
                _costs(network, responses, CostFeature.TRAVEL_TIME), expected
            ):
                assert math.isclose(got, want, rel_tol=1e-9)

            # 4. Crash chaos: a worker hard-killed mid-batch is restarted and
            #    the resubmitted batch serves identical results.
            service.inject_crash(1)
            responses = service.route_many(requests, engine="Shortest")
            expected = [
                _reference_cost(network, r.source, r.destination, CostFeature.DISTANCE)
                for r in requests
            ]
            for got, want in zip(
                _costs(network, responses, CostFeature.DISTANCE), expected
            ):
                assert math.isclose(got, want, rel_tol=1e-9)

            stats = service.stats()
            assert stats.shards == 2
            assert stats.transport == transport
            assert stats.worker_restarts >= 1
            assert stats.cross_shard_requests + stats.in_shard_requests > 0
            assert sum(stats.shard_requests.values()) > 0
            assert stats.traffic_updates == 1
            assert stats.requests == len(requests) * 4 + 1

        # 5. Clean shutdown leaks no segment.
        assert not _segment_exists(segment_name)
        with pytest.raises(ShardingError):
            service.route(requests[0])
        assert service.close()  # idempotent
