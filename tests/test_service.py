"""Tests for the routing service layer.

Covers the typed request/response objects, the engine protocol and adapters
(L2R plus all six baselines), the ``RoutingService`` facade (batching,
caching, fallback chains, stats), and model persistence round-trips.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines import (
    DomBaseline,
    ExternalRoutingService,
    FastestBaseline,
    PopularRouteBaseline,
    ShortestBaseline,
    TripBaseline,
)
from repro.core import LearnToRoute
from repro.exceptions import ConfigurationError, NoPathError
from repro.routing import CostFeature, Path, shortest_path
from repro.service import (
    AlgorithmEngine,
    ContractionEngine,
    FunctionEngine,
    L2REngine,
    ModelPersistenceError,
    RouteCache,
    RouteRequest,
    RouteResponse,
    RoutingEngine,
    RoutingService,
    load_model,
    save_model,
)


@pytest.fixture(scope="module")
def requests(tiny_split) -> list[RouteRequest]:
    return [
        RouteRequest(
            source=t.source,
            destination=t.destination,
            departure_time=t.departure_time,
            driver_id=t.driver_id,
            request_id=str(t.trajectory_id),
        )
        for t in tiny_split.test[:15]
    ]


@pytest.fixture(scope="module")
def all_engine_service(tiny, tiny_split, fitted_l2r) -> RoutingService:
    """A service with L2R and all six baselines registered."""
    network, train = tiny.network, tiny_split.train
    service = RoutingService()
    service.register("L2R", L2REngine(fitted_l2r), fallback="Fastest", default=True)
    service.register("Shortest", ShortestBaseline(network).as_engine())
    service.register("Fastest", FastestBaseline(network).as_engine())
    service.register("Dom", DomBaseline(network, train, max_trajectories_per_driver=2).as_engine())
    service.register("TRIP", TripBaseline(network, train).as_engine())
    service.register("Popular", PopularRouteBaseline(network, train).as_engine())
    service.register("Google", ExternalRoutingService(network).as_engine())
    return service


class TestRequestResponse:
    def test_request_is_frozen(self):
        request = RouteRequest(source=1, destination=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.source = 3  # type: ignore[misc]

    def test_response_is_frozen(self):
        response = RouteResponse(
            request=RouteRequest(source=1, destination=2), path=None, engine="x", error="boom"
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            response.engine = "y"  # type: ignore[misc]
        assert not response.ok

    def test_departure_time_recorded_even_when_model_ignores_it(self, fitted_l2r):
        # The fitted tiny model is not time-dependent: the requested time does
        # not change the path, but the response still records it.
        engine = L2REngine(fitted_l2r)
        request = RouteRequest(source=0, destination=5, departure_time=8 * 3600.0)
        response = engine.route(request)
        assert response.request.departure_time == 8 * 3600.0

    def test_request_id_echoed(self, all_engine_service):
        response = all_engine_service.route(
            RouteRequest(source=0, destination=5, request_id="req-42")
        )
        assert response.request.request_id == "req-42"


class TestEngines:
    def test_all_seven_engines_answer_batches(self, all_engine_service, requests, tiny):
        for name in all_engine_service.engines():
            responses = all_engine_service.route_many(requests, engine=name, max_workers=4)
            assert len(responses) == len(requests)
            for request, response in zip(requests, responses):
                assert response.ok, f"{name} failed: {response.error}"
                assert response.path.source == request.source
                assert response.path.destination == request.destination
                assert response.path.is_valid(tiny.network)
                assert response.latency_s >= 0.0

    def test_engine_protocol_runtime_checkable(self, tiny, fitted_l2r):
        assert isinstance(L2REngine(fitted_l2r), RoutingEngine)
        assert isinstance(ShortestBaseline(tiny.network).as_engine(), RoutingEngine)

    def test_as_engine_keeps_algorithm_name(self, tiny):
        engine = ShortestBaseline(tiny.network).as_engine()
        assert engine.name == "Shortest"
        assert AlgorithmEngine(ShortestBaseline(tiny.network), name="alias").name == "alias"

    def test_l2r_engine_reports_diagnostics(self, all_engine_service, requests):
        response = all_engine_service.route(requests[0], engine="L2R")
        assert response.diagnostics is not None or response.cache_hit

    def test_cost_override_routes_single_cost_optimal(self, tiny, all_engine_service, requests):
        request = dataclasses.replace(requests[0], cost_override=CostFeature.DISTANCE)
        response = all_engine_service.route(request, engine="L2R")
        expected = shortest_path(tiny.network, request.source, request.destination)
        assert response.ok
        assert response.path.distance_m(tiny.network) == pytest.approx(
            expected.distance_m(tiny.network)
        )

    def test_engine_converts_failures_to_error_responses(self, tiny):
        engine = FastestBaseline(tiny.network).as_engine()
        response = engine.route(RouteRequest(source=0, destination=999_999))
        assert not response.ok
        assert response.error is not None
        assert response.path is None


class TestRoutingService:
    def test_route_without_engines_raises(self):
        with pytest.raises(ConfigurationError):
            RoutingService().route(RouteRequest(source=0, destination=1))

    def test_unknown_engine_rejected(self, all_engine_service, requests):
        with pytest.raises(ConfigurationError):
            all_engine_service.route(requests[0], engine="nope")

    def test_default_engine_is_first_registered(self, all_engine_service):
        assert all_engine_service.default_engine == "L2R"

    def test_route_between_convenience(self, all_engine_service, tiny):
        response = all_engine_service.route_between(0, 7, engine="Fastest")
        assert response.ok
        assert response.path.is_valid(tiny.network)

    def test_route_many_preserves_order(self, all_engine_service, requests):
        responses = all_engine_service.route_many(requests, engine="Shortest", max_workers=8)
        for request, response in zip(requests, responses):
            assert response.request.source == request.source
            assert response.request.destination == request.destination

    def test_route_many_isolates_partial_failures(self, tiny, fitted_l2r):
        service = RoutingService()
        service.register("L2R", L2REngine(fitted_l2r))
        good = RouteRequest(source=0, destination=5)
        bad = RouteRequest(source=0, destination=777_777)
        responses = service.route_many([good, bad, good], max_workers=3)
        assert responses[0].ok and responses[2].ok
        assert not responses[1].ok
        assert responses[1].error

    def test_cache_hit_flagged_and_counted(self, tiny, fitted_l2r, requests):
        service = RoutingService(cache_size=64)
        service.register("L2R", L2REngine(fitted_l2r))
        first = service.route(requests[0])
        again = service.route(requests[0])
        assert not first.cache_hit
        assert again.cache_hit
        assert again.path.vertices == first.path.vertices
        stats = service.stats()
        assert stats.cache.hits == 1
        assert stats.cache.misses == 1
        assert stats.cache_hit_rate == pytest.approx(0.5)

    def test_cache_disabled_service_never_reports_hits(self, tiny, fitted_l2r, requests):
        service = RoutingService(enable_cache=False)
        service.register("L2R", L2REngine(fitted_l2r))
        service.route(requests[0])
        response = service.route(requests[0])
        assert not response.cache_hit
        assert service.stats().cache.hits == 0

    def test_cache_does_not_mix_engines_or_drivers(self, tiny, fitted_l2r):
        cache = RouteCache(max_size=8)
        base = RouteRequest(source=0, destination=5)
        assert cache.key_for("a", base) != cache.key_for("b", base)
        assert cache.key_for("a", base) != cache.key_for(
            "a", dataclasses.replace(base, driver_id=7)
        )

    def test_cache_peak_bucket_separates_times_for_time_dependent_engines(self):
        cache = RouteCache(max_size=8)
        cache.mark_time_dependent("e")
        peak = RouteRequest(source=0, destination=5, departure_time=8 * 3600.0)
        off = RouteRequest(source=0, destination=5, departure_time=12 * 3600.0)
        off2 = RouteRequest(source=0, destination=5, departure_time=13 * 3600.0)
        assert cache.key_for("e", peak) != cache.key_for("e", off)
        assert cache.key_for("e", off) == cache.key_for("e", off2)
        # A static engine's answer does not depend on the departure time, so
        # all times share one cache line.
        untimed = RouteRequest(source=0, destination=5)
        assert cache.key_for("static", peak) == cache.key_for("static", off)
        assert cache.key_for("static", peak) == cache.key_for("static", untimed)

    def test_cache_lru_eviction(self):
        cache = RouteCache(max_size=2)
        for destination in (10, 11, 12):
            request = RouteRequest(source=0, destination=destination)
            cache.put(
                "e",
                RouteResponse(request=request, path=Path.of([0, destination]), engine="e"),
            )
        assert len(cache) == 2
        assert cache.get("e", RouteRequest(source=0, destination=10)) is None

    def test_fallback_chain_answers_on_engine_failure(self, tiny):
        def always_fails(source, destination):
            raise NoPathError(source, destination, "synthetic failure")

        service = RoutingService()
        service.register("broken", FunctionEngine(tiny.network, always_fails, name="broken"))
        service.register("Fastest", FastestBaseline(tiny.network).as_engine())
        service.set_fallback("broken", "Fastest")
        response = service.route(RouteRequest(source=0, destination=9), engine="broken")
        assert response.ok
        assert response.engine == "Fastest"
        assert response.fallback_used
        assert service.stats().fallbacks == 1

    def test_unregistered_fallback_name_is_skipped(self, tiny):
        def always_fails(source, destination):
            raise NoPathError(source, destination)

        service = RoutingService()
        service.register(
            "broken", FunctionEngine(tiny.network, always_fails, name="broken"), fallback="typo"
        )
        response = service.route(RouteRequest(source=0, destination=9), engine="broken")
        assert not response.ok  # error response, not a KeyError crash
        assert "'typo' is not registered" in response.error  # typo surfaced
        responses = service.route_many([RouteRequest(source=0, destination=9)] * 3)
        assert all(not r.ok for r in responses)

    def test_cache_adopts_time_dependent_peak_hours(self, tiny, tiny_split):
        from repro.baselines import L2RAlgorithm
        from repro.core import L2RConfig, PeakHours

        custom = PeakHours(morning_start_s=6 * 3600.0, morning_end_s=10 * 3600.0)
        pipeline = LearnToRoute(
            L2RConfig(time_dependent=True, peak_hours=custom)
        ).fit(tiny.network, tiny_split.train)
        service = RoutingService()
        service.register("L2R", pipeline.as_engine())
        assert service._cache.peak_hours == custom
        # The adoption also sees a pipeline one adapter deeper.
        wrapped = RoutingService()
        wrapped.register("L2R", L2RAlgorithm(pipeline).as_engine())
        assert wrapped._cache.peak_hours == custom
        # An explicitly pinned, disagreeing bucketing is refused.
        pinned = RoutingService(peak_hours=PeakHours())
        with pytest.raises(ConfigurationError):
            pinned.register("L2R", pipeline.as_engine())

    def test_reregistering_engine_invalidates_its_cache(self, tiny, fitted_l2r):
        service = RoutingService()
        service.register("E", FunctionEngine(tiny.network, lambda s, d: Path.of([s, d]), name="A"))
        request = RouteRequest(source=0, destination=1)
        first = service.route(request)
        assert first.engine == "E"  # responses carry the registry name
        assert first.path.vertices == (0, 1)
        service.register(
            "E", FunctionEngine(tiny.network, lambda s, d: Path.of([s, 2, d]), name="B")
        )
        replaced = service.route(request)
        assert not replaced.cache_hit
        assert replaced.path.vertices == (0, 2, 1)

    def test_reregistering_fallback_engine_drops_answers_served_through_it(self, tiny):
        def boom(source, destination):
            raise NoPathError(source, destination)

        service = RoutingService()
        service.register("A", FunctionEngine(tiny.network, boom, name="A"), fallback="B")
        service.register("B", FunctionEngine(tiny.network, lambda s, d: Path.of([s, d]), name="B"))
        request = RouteRequest(source=0, destination=1)
        first = service.route(request, engine="A")  # answered by B, cached under A's key
        assert first.engine == "B" and first.fallback_used
        service.register(
            "B", FunctionEngine(tiny.network, lambda s, d: Path.of([s, 2, d]), name="B")
        )
        replayed = service.route(request, engine="A")
        assert not replayed.cache_hit  # the old B's answer is gone
        assert replayed.path.vertices == (0, 2, 1)

    def test_raising_protocol_engine_yields_error_slot_in_batch(self, tiny):
        class Raising:
            name = "Raising"

            def route(self, request):
                raise NoPathError(request.source, request.destination, "synthetic")

        service = RoutingService()
        service.register("Raising", Raising())
        service.register("Fastest", FastestBaseline(tiny.network).as_engine())
        responses = service.route_many(
            [RouteRequest(source=0, destination=9)] * 2, engine="Raising"
        )
        assert all(not r.ok and r.error for r in responses)
        # With a fallback the raising engine still gets answered.
        service.set_fallback("Raising", "Fastest")
        rescued = service.route(RouteRequest(source=0, destination=9), engine="Raising")
        assert rescued.ok and rescued.fallback_used

    def test_default_window_engine_pins_peak_hours(self, tiny):
        from types import SimpleNamespace

        from repro.core import PeakHours

        def fake_time_dependent(peak_hours):
            return SimpleNamespace(
                name="fake", route=lambda request: None, peak_hours=peak_hours
            )

        service = RoutingService()
        service.register("first", fake_time_dependent(PeakHours()))
        with pytest.raises(ConfigurationError):
            service.register(
                "second",
                fake_time_dependent(PeakHours(morning_start_s=6 * 3600.0)),
            )

    def test_reregistration_invalidates_by_internal_engine_name(self, tiny):
        def boom(source, destination):
            raise NoPathError(source, destination)

        service = RoutingService()
        service.register("A", FunctionEngine(tiny.network, boom, name="A"), fallback="fast")
        # Registry name "fast" differs from the engine's internal name.
        service.register(
            "fast", FunctionEngine(tiny.network, lambda s, d: Path.of([s, d]), name="Internal")
        )
        request = RouteRequest(source=0, destination=1)
        first = service.route(request, engine="A")
        assert first.engine == "fast"  # registry name, not the internal one
        service.register(
            "fast", FunctionEngine(tiny.network, lambda s, d: Path.of([s, 2, d]), name="Internal")
        )
        replayed = service.route(request, engine="A")
        assert not replayed.cache_hit
        assert replayed.path.vertices == (0, 2, 1)

    def test_latency_samples_are_a_ring_buffer(self):
        from repro.service import StatsAccumulator
        from repro.service.cache import CacheStats

        accumulator = StatsAccumulator(max_latency_samples=4)
        for latency in (0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0):
            accumulator.record(
                RouteResponse(
                    request=RouteRequest(source=0, destination=1),
                    path=Path.of([0, 1]),
                    engine="e",
                    latency_s=latency,
                )
            )
        stats = accumulator.snapshot(CacheStats(0, 0, 0, 0))
        # The window holds the most recent samples, not the startup ones.
        assert stats.latency_p50_s == pytest.approx(1.0)
        assert stats.latency_mean_s == pytest.approx(1.0)

    def test_fallback_cycles_terminate(self, tiny):
        def always_fails(source, destination):
            raise NoPathError(source, destination)

        service = RoutingService()
        service.register("a", FunctionEngine(tiny.network, always_fails, name="a"), fallback="b")
        service.register("b", FunctionEngine(tiny.network, always_fails, name="b"), fallback="a")
        response = service.route(RouteRequest(source=0, destination=9), engine="a")
        assert not response.ok

    def test_aliases_of_same_engine_name_are_tracked_separately(self, tiny, fitted_l2r):
        service = RoutingService()
        service.register("l2r-v1", L2REngine(fitted_l2r))
        service.register("l2r-v2", L2REngine(fitted_l2r))  # same internal name "L2R"
        request = RouteRequest(source=0, destination=5)
        assert service.route(request, engine="l2r-v1").engine == "l2r-v1"
        assert service.route(request, engine="l2r-v2").engine == "l2r-v2"
        stats = service.stats()
        assert stats.requests_by_engine == {"l2r-v1": 1, "l2r-v2": 1}
        # Re-registering one alias keeps the other alias's cache line.
        service.register("l2r-v1", L2REngine(fitted_l2r))
        assert service.route(request, engine="l2r-v2").cache_hit

    def test_route_many_reuses_the_worker_pool(self, tiny, fitted_l2r, requests):
        # No cache: repeat batches must actually reach the worker pool
        # (with the cache on, the second batch is all hits and the pool —
        # correctly — is never touched).
        service = RoutingService(enable_cache=False)
        service.register("L2R", L2REngine(fitted_l2r))
        service.route_many(requests, max_workers=4)
        pool = service._executor
        service.route_many(requests, max_workers=2)
        assert service._executor is pool  # never shrunk
        service.route_many(requests, max_workers=8)
        assert service._executor is not pool  # grown on demand
        assert service._retired_executors == []  # idle old pool reaped at once
        service.close()
        assert service._executor is None
        assert service.route_many(requests[:3], max_workers=2)  # still usable

    def test_exhausted_chain_reports_requested_engines_error(self, tiny):
        def boom_a(source, destination):
            raise NoPathError(source, destination, "primary failure detail")

        def boom_b(source, destination):
            raise NoPathError(source, destination, "fallback failure")

        service = RoutingService()
        service.register("A", FunctionEngine(tiny.network, boom_a, name="A"), fallback="B")
        service.register("B", FunctionEngine(tiny.network, boom_b, name="B"))
        response = service.route(RouteRequest(source=0, destination=9), engine="A")
        assert not response.ok
        assert response.engine == "A"
        assert "primary failure detail" in response.error
        assert not response.fallback_used

    def test_fallback_serves_from_fallback_engines_cache(self, tiny):
        calls = {"n": 0}

        def counting_fast(source, destination):
            calls["n"] += 1
            return Path.of([source, destination])

        def boom(source, destination):
            raise NoPathError(source, destination)

        service = RoutingService()
        service.register("fast", FunctionEngine(tiny.network, counting_fast, name="fast"))
        service.register("A", FunctionEngine(tiny.network, boom, name="A"), fallback="fast")
        request = RouteRequest(source=0, destination=1)
        service.route(request, engine="fast")  # warm fast's own cache line
        assert calls["n"] == 1
        rescued = service.route(request, engine="A")
        assert rescued.ok and rescued.fallback_used and rescued.cache_hit
        assert calls["n"] == 1  # served from the fallback's cache, not recomputed
        # One outcome per logical request: the probe hit reclassified the
        # primary miss, leaving 1 miss (first route) and 1 hit (second).
        stats = service.stats()
        assert stats.cache.misses == 1
        assert stats.cache.hits == 1
        assert stats.fallbacks == 1

    def test_reregistering_fallback_engine_mid_flight_is_not_cached(self, tiny):
        import threading

        started = threading.Event()
        release = threading.Event()

        def boom(source, destination):
            raise NoPathError(source, destination)

        def slow_old_b(source, destination):
            started.set()
            assert release.wait(timeout=5)
            return Path.of([source, destination])

        service = RoutingService()
        service.register("A", FunctionEngine(tiny.network, boom, name="A"), fallback="B")
        service.register("B", FunctionEngine(tiny.network, slow_old_b, name="B"))
        request = RouteRequest(source=0, destination=1)
        worker = threading.Thread(target=lambda: service.route(request, engine="A"))
        worker.start()
        assert started.wait(timeout=5)  # old B is mid-flight via A's chain
        service.register(
            "B", FunctionEngine(tiny.network, lambda s, d: Path.of([s, 2, d]), name="B")
        )
        release.set()
        worker.join(timeout=5)
        follow = service.route(request, engine="A")
        assert not follow.cache_hit  # the in-flight old-B answer was vetoed
        assert follow.path.vertices == (0, 2, 1)

    def test_fallback_probe_does_not_inflate_miss_count(self, tiny):
        def boom(source, destination):
            raise NoPathError(source, destination)

        service = RoutingService()
        service.register("A", FunctionEngine(tiny.network, boom, name="A"), fallback="B")
        service.register("B", FunctionEngine(tiny.network, lambda s, d: Path.of([s, d]), name="B"))
        service.route(RouteRequest(source=0, destination=1), engine="A")
        stats = service.stats()
        assert stats.cache.misses == 1  # one logical request, one miss

    def test_cache_replays_do_not_inflate_fallback_count(self, tiny):
        def boom(source, destination):
            raise NoPathError(source, destination)

        service = RoutingService()
        service.register("A", FunctionEngine(tiny.network, boom, name="A"), fallback="B")
        service.register("B", FunctionEngine(tiny.network, lambda s, d: Path.of([s, d]), name="B"))
        request = RouteRequest(source=0, destination=1)
        for _ in range(5):
            service.route(request, engine="A")
        stats = service.stats()
        assert stats.fallbacks == 1  # the chain ran once; 4 cache replays
        assert stats.cache.hits == 4

    def test_stats_snapshot(self, tiny, fitted_l2r, requests):
        service = RoutingService()
        service.register("L2R", L2REngine(fitted_l2r))
        service.register("Fastest", FastestBaseline(tiny.network).as_engine())
        service.route_many(requests, engine="L2R")
        service.route_many(requests[:5], engine="Fastest")
        stats = service.stats()
        assert stats.requests == 20
        assert stats.requests_by_engine == {"L2R": 15, "Fastest": 5}
        assert stats.latency_p95_s >= stats.latency_p50_s >= 0.0
        assert sum(stats.case_histogram.values()) >= 1  # L2R reports cases
        assert stats.error_rate == 0.0
        service.reset_stats()
        fresh = service.stats()
        assert fresh.requests == 0
        # The cache window resets with the stats window (entries are kept).
        assert fresh.cache.hits == 0 and fresh.cache.misses == 0
        assert fresh.cache.size > 0


class TestPersistence:
    def test_round_trip_identical_routes(self, tiny, tiny_split, fitted_l2r, tmp_path):
        target = tmp_path / "model.pkl.gz"
        written = fitted_l2r.save(target)
        assert written == target
        assert not list(tmp_path.glob("*.tmp"))  # atomic write, no scratch left
        restored = LearnToRoute.load(target)
        assert restored.is_fitted
        for trajectory in tiny_split.test[:25]:
            original = fitted_l2r.route(trajectory.source, trajectory.destination)
            reloaded = restored.route(trajectory.source, trajectory.destination)
            assert original.vertices == reloaded.vertices

    def test_round_trip_preserves_region_graph(self, fitted_l2r, tmp_path):
        restored = LearnToRoute.load(fitted_l2r.save(tmp_path / "m.pkl.gz"))
        assert restored.region_graph.statistics() == fitted_l2r.region_graph.statistics()

    def test_loaded_model_serves_through_service(self, tiny, tiny_split, fitted_l2r, tmp_path):
        restored = LearnToRoute.load(fitted_l2r.save(tmp_path / "m.pkl.gz"))
        service = RoutingService()
        service.register("L2R", restored.as_engine())
        trajectory = tiny_split.test[0]
        response = service.route(RouteRequest(trajectory.source, trajectory.destination))
        assert response.ok

    def test_unfitted_model_refused(self, tmp_path):
        with pytest.raises(ModelPersistenceError):
            save_model(LearnToRoute(), tmp_path / "m.pkl.gz")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ModelPersistenceError):
            load_model(tmp_path / "missing.pkl.gz")

    def test_garbage_file_rejected(self, tmp_path):
        import gzip
        import pickle

        target = tmp_path / "garbage.pkl.gz"
        with gzip.open(target, "wb") as handle:
            pickle.dump({"format": "something-else"}, handle)
        with pytest.raises(ModelPersistenceError):
            load_model(target)


class TestContractionEngine:
    """The CH engine: exact answers, weights-version-keyed caching, stats."""

    def _service(self, seed: int = 9):
        from repro.network import grid_city_network

        network = grid_city_network(rows=6, cols=6, seed=seed)
        service = RoutingService()
        service.register("CH", ContractionEngine(network), default=True)
        return network, service

    def test_answers_are_single_cost_optimal(self):
        from repro.routing import cost_function, dijkstra

        network, service = self._service()
        cost = cost_function(CostFeature.TRAVEL_TIME)
        response = service.route(RouteRequest(source=0, destination=35))
        assert response.ok
        assert response.diagnostics.case == "contraction-hierarchy"
        reference = dijkstra(network, 0, 35, cost)
        got = sum(cost(e) for e in network.path_edges(response.path.vertices))
        expected = sum(cost(e) for e in network.path_edges(reference.vertices))
        assert got == pytest.approx(expected, rel=1e-9)

    def test_cache_not_replayed_across_weights_version_bumps(self):
        """A cost update must invalidate CH cache lines even without a
        TrafficFeed subscription: the cache key carries the engine's
        ``cache_version`` tag."""
        from repro.routing import cost_function, dijkstra

        network, service = self._service(10)
        cost = cost_function(CostFeature.TRAVEL_TIME)
        request = RouteRequest(source=0, destination=35)
        first = service.route(request)
        assert service.route(request).cache_hit

        updates = {}
        for edge in network.path_edges(first.path.vertices):
            updates[(edge.source, edge.target)] = {
                "travel_time_s": edge.travel_time_s * 50
            }
        network.update_edge_costs(updates)  # no feed: generation unchanged

        fresh = service.route(request)
        assert not fresh.cache_hit
        reference = dijkstra(network, 0, 35, cost)
        got = sum(cost(e) for e in network.path_edges(fresh.path.vertices))
        expected = sum(cost(e) for e in network.path_edges(reference.vertices))
        assert got == pytest.approx(expected, rel=1e-9)
        # And the refreshed answer is cached under the new tag.
        assert service.route(request).cache_hit

    def test_stats_count_hierarchy_reweights(self):
        network, service = self._service(11)
        service.route(RouteRequest(source=0, destination=35))
        assert service.stats().hierarchy_reweights == 0
        edge = next(network.edges())
        network.update_edge_costs(
            {(edge.source, edge.target): {"travel_time_s": edge.travel_time_s * 4}}
        )
        service.route(RouteRequest(source=1, destination=34))
        stats = service.stats()
        assert stats.hierarchy_reweights == 1
        # reset_stats keeps it: engine state, not a monitoring-window counter
        service.reset_stats()
        assert service.stats().hierarchy_reweights == 1

    def test_route_many_batches_ch_requests(self):
        network, service = self._service(12)
        requests = [RouteRequest(source=0, destination=d) for d in range(18, 34)]
        responses = service.route_many(requests, batch_min_size=4)
        assert all(r.ok for r in responses)
        assert sum(1 for r in responses if r.batched) >= len(requests) - 1
        service.close()

    def test_on_stale_raise_engine_reports_error_response(self):
        from repro.network import grid_city_network

        network = grid_city_network(rows=4, cols=4, seed=13)
        service = RoutingService()
        service.register(
            "CH", ContractionEngine(network, on_stale="raise"), default=True
        )
        assert service.route(RouteRequest(source=0, destination=15)).ok
        edge = next(network.edges())
        network.update_edge_costs(
            {(edge.source, edge.target): {"travel_time_s": edge.travel_time_s * 2}}
        )
        response = service.route(RouteRequest(source=0, destination=15))
        assert not response.ok
        assert "StaleHierarchyError" in response.error

    def test_prebuilt_hierarchy_is_shared(self):
        from repro.network import grid_city_network

        network = grid_city_network(rows=4, cols=4, seed=14)
        prepared = network.prepare_hierarchy(CostFeature.TRAVEL_TIME)
        engine = ContractionEngine(network, hierarchy=prepared)
        assert engine.hierarchy() is prepared
        lazy = ContractionEngine(network)
        assert lazy.hierarchy() is prepared  # prepare_hierarchy cache shared
