"""Tests for the HMM map matcher and the spatial index feeding it."""

from __future__ import annotations

import pytest

from repro.exceptions import MapMatchingError
from repro.network import SpatialIndex
from repro.preferences import path_similarity
from repro.routing import fastest_path, shortest_path
from repro.trajectories import (
    GPSRecord,
    HMMMapMatcher,
    MatchingConfig,
    Trajectory,
    high_frequency_sampler,
    sample_path,
)


class TestSpatialIndex:
    def test_nearest_vertex_exact(self, grid_network):
        index = SpatialIndex(grid_network)
        target = grid_network.coordinates(42)
        assert index.nearest_vertex(target) == 42

    def test_nearest_vertex_none_far_away(self, grid_network):
        index = SpatialIndex(grid_network)
        assert index.nearest_vertex((0.0, 0.0), max_radius_m=1_000.0) is None

    def test_vertices_within_radius(self, grid_network):
        index = SpatialIndex(grid_network)
        center = grid_network.coordinates(44)
        nearby = index.vertices_within(center, radius_m=400.0)
        assert 44 in nearby
        assert len(nearby) >= 3  # grid spacing is 300 m

    def test_candidate_edges_sorted_by_distance(self, grid_network):
        index = SpatialIndex(grid_network)
        point = grid_network.coordinates(10)
        candidates = index.candidate_edges(point, radius_m=200.0)
        assert candidates
        distances = [d for _, d in candidates]
        assert distances == sorted(distances)

    def test_invalid_cell_size(self, grid_network):
        with pytest.raises(ValueError):
            SpatialIndex(grid_network, cell_size_m=0.0)


class TestHMMMapMatcher:
    @pytest.fixture(scope="class")
    def matcher(self, grid_network):
        return HMMMapMatcher(grid_network)

    def test_matches_clean_trajectory_exactly(self, grid_network, matcher):
        ground_truth = shortest_path(grid_network, 0, 77)
        raw = sample_path(
            grid_network, ground_truth, high_frequency_sampler(noise_std_m=0.0), 1, 1
        )
        matched = matcher.match(raw)
        similarity = path_similarity(grid_network, ground_truth, matched.path)
        assert similarity > 0.9

    def test_matches_noisy_trajectory_reasonably(self, grid_network, matcher):
        ground_truth = fastest_path(grid_network, 3, 93)
        raw = sample_path(
            grid_network, ground_truth, high_frequency_sampler(noise_std_m=6.0), 2, 1
        )
        matched = matcher.match(raw)
        assert matched.path.is_valid(grid_network)
        assert path_similarity(grid_network, ground_truth, matched.path) > 0.6

    def test_matched_metadata_preserved(self, grid_network, matcher):
        ground_truth = shortest_path(grid_network, 5, 55)
        raw = sample_path(
            grid_network, ground_truth, high_frequency_sampler(noise_std_m=2.0),
            trajectory_id=17, driver_id=4, departure_time=3_600.0,
        )
        matched = matcher.match(raw)
        assert matched.trajectory_id == 17
        assert matched.driver_id == 4
        assert matched.departure_time == pytest.approx(3_600.0)
        assert matched.raw is raw

    def test_unmatchable_trajectory_raises(self, grid_network, matcher):
        far = Trajectory(
            trajectory_id=9,
            driver_id=9,
            records=(GPSRecord(0.0, 0.0, 0.0), GPSRecord(0.001, 0.0, 10.0)),
        )
        with pytest.raises(MapMatchingError):
            matcher.match(far)

    def test_match_many_skips_failures(self, grid_network, matcher):
        good_path = shortest_path(grid_network, 0, 33)
        good = sample_path(grid_network, good_path, high_frequency_sampler(0.0), 1, 1)
        bad = Trajectory(
            trajectory_id=2,
            driver_id=2,
            records=(GPSRecord(0.0, 0.0, 0.0), GPSRecord(0.001, 0.0, 10.0)),
        )
        matched = matcher.match_many([good, bad])
        assert len(matched) == 1

    def test_match_many_raises_when_requested(self, grid_network, matcher):
        bad = Trajectory(
            trajectory_id=2,
            driver_id=2,
            records=(GPSRecord(0.0, 0.0, 0.0), GPSRecord(0.001, 0.0, 10.0)),
        )
        with pytest.raises(MapMatchingError):
            matcher.match_many([bad], skip_failures=False)

    def test_low_frequency_matching_still_connected(self, grid_network):
        from repro.trajectories import low_frequency_sampler

        matcher = HMMMapMatcher(grid_network, config=MatchingConfig(candidate_radius_m=150.0))
        ground_truth = fastest_path(grid_network, 0, 99)
        raw = sample_path(grid_network, ground_truth, low_frequency_sampler(25.0, 5.0), 3, 1)
        matched = matcher.match(raw)
        assert matched.path.is_valid(grid_network)
        assert matched.source == ground_truth.source
        assert matched.destination == ground_truth.destination
