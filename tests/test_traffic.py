"""Live-traffic cost updates: CostStore patching, TrafficFeed, invalidation.

The acceptance bar of the live-traffic refactor: after any sequence of
randomized cost updates, the compiled kernels must return path-for-path the
same answers as a fresh dict-based search on the mutated network — without
the compiled snapshot ever being rebuilt.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import FastestBaseline
from repro.exceptions import EdgeNotFoundError, NetworkError, NoPathError
from repro.network import RoadNetwork, RoadType, compiled_disabled, grid_city_network
from repro.network.compiled.graph import EDGE_COST_ATTRIBUTES, TOPOLOGY_STAMP
from repro.preferences import PreferenceVector
from repro.preferences.features import MAJOR_ROADS
from repro.routing import (
    CostFeature,
    astar,
    bidirectional_dijkstra,
    cost_function,
    dict_astar,
    dict_bidirectional_dijkstra,
    dict_dijkstra,
    dijkstra,
    heuristic_for,
    preference_dijkstra,
    weighted_cost,
)
from repro.routing.preference_dijkstra import _dict_preference_search
from repro.service import RouteRequest, RoutingService
from repro.traffic import TrafficFeed, TrafficUpdate, synthetic_congestion


def _line_network(n: int = 5) -> RoadNetwork:
    network = RoadNetwork(name="traffic-line")
    for i in range(n):
        network.add_vertex(i, lon=10.0 + i * 0.01, lat=56.0)
    for i in range(n - 1):
        network.add_edge(i, i + 1, distance_m=1_000.0, bidirectional=True)
    return network


# --------------------------------------------------------------------------- #
# TrafficUpdate semantics
# --------------------------------------------------------------------------- #
class TestTrafficUpdate:
    def test_constructors_and_key(self):
        update = TrafficUpdate.set(1, 2, travel_time_s=9.0)
        assert update.key == (1, 2)
        assert update.attributes == {"travel_time_s"}

    def test_empty_update_rejected(self):
        with pytest.raises(NetworkError):
            TrafficUpdate(source=1, target=2)

    def test_unknown_attribute_rejected(self):
        with pytest.raises(NetworkError):
            TrafficUpdate.set(1, 2, speed_kmh=90.0)

    def test_resolution_order_absolute_scale_delta(self):
        network = _line_network()
        edge = network.edge(0, 1)
        update = TrafficUpdate(
            source=0,
            target=1,
            absolute=(("travel_time_s", 100.0),),
            scale=(("travel_time_s", 2.0),),
            delta=(("travel_time_s", 5.0),),
        )
        assert update.resolve(edge) == {"travel_time_s": 205.0}

    def test_resolution_composes_with_pending(self):
        network = _line_network()
        edge = network.edge(0, 1)
        first = TrafficUpdate.set(0, 1, travel_time_s=60.0)
        second = TrafficUpdate.scale_by(0, 1, travel_time_s=3.0)
        pending = first.resolve(edge)
        assert second.resolve(edge, pending) == {"travel_time_s": 180.0}

    def test_updates_are_hashable(self):
        a = TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)
        b = TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)
        assert len({a, b}) == 1


# --------------------------------------------------------------------------- #
# RoadNetwork.update_edge_costs
# --------------------------------------------------------------------------- #
class TestUpdateEdgeCosts:
    def test_patches_dicts_and_cached_compiled_view(self):
        network = grid_city_network(rows=5, cols=5, seed=2)
        view = network.compiled()
        slot = view.slot(0, 1)
        version = network.version
        touched = network.update_edge_costs({(0, 1): {"travel_time_s": 777.0}})
        assert touched == {(0, 1)}
        assert network.edge(0, 1).travel_time_s == 777.0
        assert network.successors(0)[1].travel_time_s == 777.0
        assert network.predecessors(1)[0].travel_time_s == 777.0
        # The snapshot survived, was patched in place, and bumped versions.
        assert network.compiled() is view
        assert view.array("travel_time_s")[slot] == 777.0
        assert view.edges[slot].travel_time_s == 777.0
        assert view.cost_version == 1
        assert network.cost_version == 1
        assert network.version == version + 1

    def test_batch_is_transactional(self):
        network = _line_network()
        network.compiled()
        before = network.edge(0, 1).travel_time_s
        with pytest.raises(EdgeNotFoundError):
            network.update_edge_costs(
                {
                    (0, 1): {"travel_time_s": 5.0},
                    (0, 4): {"travel_time_s": 5.0},  # no such edge
                }
            )
        assert network.edge(0, 1).travel_time_s == before
        assert network.cost_version == 0

    @pytest.mark.parametrize("bad", [-1.0, 0.0, float("nan"), float("inf")])
    def test_non_positive_values_rejected(self, bad):
        network = _line_network()
        with pytest.raises(NetworkError):
            network.update_edge_costs({(0, 1): {"travel_time_s": bad}})
        assert network.cost_version == 0

    def test_unknown_attribute_rejected(self):
        network = _line_network()
        with pytest.raises(NetworkError):
            network.update_edge_costs({(0, 1): {"speed_kmh": 130.0}})

    def test_empty_update_is_noop(self):
        network = _line_network()
        view = network.compiled()
        assert network.update_edge_costs({}) == frozenset()
        assert network.update_edge_costs({(0, 1): {}}) == frozenset()
        assert network.cost_version == 0
        assert network.compiled() is view
        assert view.cost_version == 0

    def test_writing_current_values_is_noop(self):
        """Idempotent batches (values equal to the current costs) change
        nothing, bump nothing, and report no touched edges — so downstream
        cache invalidation never fires for a de-congestion tick back to
        current levels."""
        network = _line_network()
        view = network.compiled()
        current = network.edge(0, 1).travel_time_s
        touched = network.update_edge_costs(
            {
                (0, 1): {"travel_time_s": current},
                (1, 2): {"travel_time_s": 999.0},
            }
        )
        assert touched == {(1, 2)}
        assert network.cost_version == 1
        assert network.update_edge_costs({(0, 1): {"travel_time_s": current}}) == frozenset()
        assert network.cost_version == 1
        assert view.cost_version == 1

    def test_update_without_compiled_view_defers_to_next_build(self):
        network = _line_network()
        network.update_edge_costs({(0, 1): {"distance_m": 123.0}})
        view = network.compiled()
        assert view.array("distance_m")[view.slot(0, 1)] == 123.0

    def test_topology_mutation_still_drops_view(self):
        network = _line_network()
        view = network.compiled()
        network.update_edge_costs({(0, 1): {"travel_time_s": 9.0}})
        assert network.compiled() is view
        network.add_edge(0, 2)
        assert network.compiled() is not view


class TestPickleCostVersion:
    def test_roundtrip_preserves_cost_version(self):
        network = _line_network()
        network.update_edge_costs({(0, 1): {"travel_time_s": 42.0}})
        network.update_edge_costs({(1, 2): {"fuel_ml": 42.0}})
        clone = pickle.loads(pickle.dumps(network))
        assert clone.cost_version == 2
        assert clone.edge(0, 1).travel_time_s == 42.0
        # The compiled view is dropped from pickles and rebuilds on demand.
        assert clone._compiled is None
        view = clone.compiled()
        assert view.array("travel_time_s")[view.slot(0, 1)] == 42.0

    def test_old_pickle_state_without_cost_version_loads(self):
        """Pickles written before the cost-version split restore cleanly
        (mirrors the Vertex/Edge slots compat handling)."""
        network = _line_network()
        state = network.__getstate__()
        assert "_cost_version" in state
        del state["_cost_version"]  # simulate a pre-split pickle
        old = RoadNetwork.__new__(RoadNetwork)
        old.__setstate__(state)
        assert old.cost_version == 0
        assert old.edge_count == network.edge_count
        # ... and the restored network accepts live updates.
        old.update_edge_costs({(0, 1): {"travel_time_s": 7.0}})
        assert old.cost_version == 1


# --------------------------------------------------------------------------- #
# CostStore version-stamped caches
# --------------------------------------------------------------------------- #
class TestCostStoreInvalidation:
    def test_cost_dependent_memo_self_evicts(self):
        network = _line_network()
        view = network.compiled()
        builds = []

        def build():
            builds.append(1)
            return view.array("travel_time_s").sum()

        first = view.memo(("sum-tt",), build)
        assert view.memo(("sum-tt",), build) == first
        assert len(builds) == 1
        network.update_edge_costs({(0, 1): {"travel_time_s": 10_000.0}})
        second = view.memo(("sum-tt",), build)
        assert len(builds) == 2
        assert second != first

    def test_topology_memo_survives_cost_updates(self):
        network = _line_network()
        view = network.compiled()
        artifact = view.memo(("topo",), object, cost_dependent=False)
        network.update_edge_costs({(0, 1): {"travel_time_s": 9.0}})
        assert view.memo(("topo",), object, cost_dependent=False) is artifact
        entry = view.costs._memo[("topo",)]
        assert entry[0] == TOPOLOGY_STAMP

    def test_weight_lists_and_linear_arrays_refresh(self):
        network = _line_network()
        view = network.compiled()
        cost = cost_function(CostFeature.TRAVEL_TIME)
        key, array, version = view.resolve_cost(cost)
        stale_forward = view.forward_weights(key, array, version)
        stale_reverse = view.reverse_weights(key, array, version)
        terms = (("travel_time_s", 1.0), ("fuel_ml", 0.5))
        stale_linear = view.linear_array(terms)

        slot = view.slot(0, 1)
        network.update_edge_costs({(0, 1): {"travel_time_s": 4_321.0}})

        key, array, version = view.resolve_cost(cost)
        assert version == 1
        assert array[slot] == 4_321.0
        fresh_forward = view.forward_weights(key, array, version)
        assert fresh_forward[slot] == 4_321.0
        assert stale_forward[slot] != 4_321.0
        fresh_reverse = view.reverse_weights(key, array, version)
        assert fresh_reverse != stale_reverse
        assert view.linear_array(terms)[slot] != stale_linear[slot]

    def test_stale_resolved_array_cannot_poison_weight_cache(self):
        """A query that resolved its array before a patch must not insert a
        pre-update weight list stamped as current (the serve-while-updating
        race): stale-versioned callers are served uncached instead."""
        network = _line_network()
        view = network.compiled()
        cost = cost_function(CostFeature.TRAVEL_TIME)
        slot = view.slot(0, 1)

        key, old_array, old_version = view.resolve_cost(cost)
        # A patch lands between resolve and the weight-list build.
        network.update_edge_costs({(0, 1): {"travel_time_s": 8_888.0}})
        stale = view.forward_weights(key, old_array, old_version)
        assert stale[slot] != 8_888.0  # the caller's own view is pre-update
        # ... but the shared cache was not poisoned: a fresh resolve sees
        # the updated cost.
        key, array, version = view.resolve_cost(cost)
        assert view.forward_weights(key, array, version)[slot] == 8_888.0

    def test_edges_list_swaps_instead_of_mutating(self):
        """A captured graph.edges snapshot never changes under a patch."""
        network = _line_network()
        view = network.compiled()
        snapshot = view.edges
        before = snapshot[view.slot(0, 1)].travel_time_s
        network.update_edge_costs({(0, 1): {"travel_time_s": 3_333.0}})
        assert snapshot[view.slot(0, 1)].travel_time_s == before
        assert view.edges is not snapshot
        assert view.edges[view.slot(0, 1)].travel_time_s == 3_333.0

    def test_readers_holding_old_arrays_see_consistent_snapshot(self):
        """Patches swap arrays; an in-flight reader's array never changes."""
        network = _line_network()
        view = network.compiled()
        old = view.array("travel_time_s")
        before = old.copy()
        network.update_edge_costs({(0, 1): {"travel_time_s": 999.0}})
        assert (old == before).all()
        assert view.array("travel_time_s") is not old


# --------------------------------------------------------------------------- #
# TrafficFeed
# --------------------------------------------------------------------------- #
class TestTrafficFeed:
    def test_apply_reports_touched_edges_and_version(self):
        network = _line_network()
        feed = TrafficFeed(network)
        result = feed.apply(
            [
                TrafficUpdate.scale_by(0, 1, travel_time_s=2.0),
                TrafficUpdate.shift(1, 2, fuel_ml=5.0),
            ]
        )
        assert result.touched_edges == {(0, 1), (1, 2)}
        assert result.cost_version == network.cost_version == 1
        assert result.applied == 2
        assert result.attributes == {"travel_time_s", "fuel_ml"}
        assert feed.batches_applied == 1

    def test_same_edge_updates_compose_in_batch_order(self):
        network = _line_network()
        base = network.edge(0, 1).travel_time_s
        feed = TrafficFeed(network)
        result = feed.apply(
            [
                TrafficUpdate.scale_by(0, 1, travel_time_s=2.0),
                TrafficUpdate.shift(0, 1, travel_time_s=10.0),
            ]
        )
        assert result.touched_count == 1
        assert network.edge(0, 1).travel_time_s == pytest.approx(base * 2.0 + 10.0)

    def test_failed_batch_changes_nothing_and_notifies_nobody(self):
        network = _line_network()
        feed = TrafficFeed(network)
        seen = []
        feed.subscribe(seen.append)
        before = network.edge(0, 1).travel_time_s
        with pytest.raises(EdgeNotFoundError):
            feed.apply(
                [
                    TrafficUpdate.scale_by(0, 1, travel_time_s=2.0),
                    TrafficUpdate.scale_by(0, 3, travel_time_s=2.0),  # missing
                ]
            )
        assert network.edge(0, 1).travel_time_s == before
        assert network.cost_version == 0
        assert seen == []
        assert feed.batches_applied == 0

    def test_raising_subscriber_does_not_starve_the_rest(self):
        """Subscriber isolation: one bad callback must not leave the other
        services' caches stale (the patch has already landed by then)."""
        network = _line_network()
        feed = TrafficFeed(network)
        seen = []

        def bad(result):
            raise RuntimeError("subscriber boom")

        feed.subscribe(bad)
        feed.subscribe(seen.append)
        with pytest.raises(RuntimeError, match="subscriber boom"):
            feed.apply([TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)])
        # The network patch succeeded and the second subscriber still ran.
        assert network.cost_version == 1
        assert len(seen) == 1 and seen[0].cost_version == 1
        assert feed.batches_applied == 1

    def test_noop_batch_notifies_nobody(self):
        network = _line_network()
        feed = TrafficFeed(network)
        seen = []
        feed.subscribe(seen.append)
        current = network.edge(0, 1).travel_time_s
        result = feed.apply([TrafficUpdate.set(0, 1, travel_time_s=current)])
        assert result.touched_edges == frozenset()
        assert network.cost_version == 0
        assert seen == []
        assert feed.batches_applied == 0

    def test_reentrant_subscriber_does_not_deadlock(self):
        """A subscriber may push a compensating update or register another
        callback from inside the notification (the feed lock is reentrant)."""
        network = _line_network()
        feed = TrafficFeed(network)
        versions = []

        def compensate(result):
            feed.subscribe(lambda r: None)  # reentrant subscribe
            if result.cost_version == 1:  # one-shot nested apply
                feed.apply([TrafficUpdate.shift(1, 2, fuel_ml=5.0)])

        feed.subscribe(compensate)
        feed.subscribe(lambda result: versions.append(result.cost_version))
        feed.apply([TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)])
        assert network.cost_version == 2
        assert versions == [2, 1]  # nested batch notified first (depth-first)

    def test_subscribers_observe_monotonic_versions(self):
        network = _line_network()
        feed = TrafficFeed(network)
        versions = []
        feed.subscribe(lambda result: versions.append(result.cost_version))
        for _ in range(3):
            feed.apply([TrafficUpdate.scale_by(0, 1, travel_time_s=1.1)])
        assert versions == [1, 2, 3]

    def test_empty_batch_is_noop(self):
        network = _line_network()
        feed = TrafficFeed(network)
        seen = []
        feed.subscribe(seen.append)
        result = feed.apply([])
        assert result.touched_count == 0
        assert network.cost_version == 0
        assert seen == []


class TestSyntheticCongestion:
    def test_batches_apply_and_stay_bounded(self):
        network = grid_city_network(rows=4, cols=4, seed=1)
        free_flow = {edge.key: edge.travel_time_s for edge in network.edges()}
        feed = TrafficFeed(network)
        peak_factor = 2.5
        for batch in synthetic_congestion(
            network, seed=3, fraction=0.3, peak_factor=peak_factor, steps=4
        ):
            feed.apply(batch)
        assert network.cost_version == 4
        # Absolute free-flow baselines: congestion never compounds.
        for key, baseline in free_flow.items():
            level = network.edge(*key).travel_time_s / baseline
            assert 1.0 <= level <= peak_factor + 1e-9

    def test_generator_validates_parameters(self):
        network = _line_network()
        with pytest.raises(NetworkError):
            next(synthetic_congestion(network, fraction=0.0))
        with pytest.raises(NetworkError):
            next(synthetic_congestion(network, peak_factor=0.5))
        with pytest.raises(NetworkError):
            next(synthetic_congestion(RoadNetwork()))


# --------------------------------------------------------------------------- #
# Service-layer delta-aware invalidation
# --------------------------------------------------------------------------- #
def _service_on(network, threshold: int = 10) -> RoutingService:
    service = RoutingService(traffic_invalidate_threshold=threshold)
    service.register("Fastest", FastestBaseline(network).as_engine(), default=True)
    return service


class TestServiceInvalidation:
    def test_only_crossing_routes_are_evicted(self):
        network = grid_city_network(rows=6, cols=6, seed=1)
        service = _service_on(network)
        feed = TrafficFeed(network, services=[service])

        touched_route = service.route(RouteRequest(source=0, destination=35))
        untouched_route = service.route(RouteRequest(source=5, destination=30))
        assert service.route(RouteRequest(source=0, destination=35)).cache_hit

        u, v = touched_route.path.edge_keys[1]
        feed.apply([TrafficUpdate.scale_by(u, v, travel_time_s=100.0)])

        stats = service.stats()
        assert stats.traffic_updates == 1
        assert stats.traffic_touched_edges == 1
        assert stats.traffic_evicted_routes == 1
        assert stats.cost_version == network.cost_version

        recomputed = service.route(RouteRequest(source=0, destination=35))
        assert not recomputed.cache_hit
        assert (u, v) not in recomputed.path.edge_keys
        assert untouched_route.path is not None
        assert service.route(RouteRequest(source=5, destination=30)).cache_hit

    def test_large_batch_falls_back_to_full_invalidation(self):
        network = grid_city_network(rows=6, cols=6, seed=1)
        service = _service_on(network, threshold=5)
        feed = TrafficFeed(network, services=[service])
        service.route(RouteRequest(source=5, destination=30))
        edges = list(network.edges())[:8]
        feed.apply(
            [TrafficUpdate.scale_by(e.source, e.target, travel_time_s=1.2) for e in edges]
        )
        # Even a route crossing none of the touched edges was dropped.
        assert not service.route(RouteRequest(source=5, destination=30)).cache_hit

    def test_cache_disabled_service_still_counts_updates(self):
        network = _line_network()
        service = RoutingService(enable_cache=False)
        service.register("Fastest", FastestBaseline(network).as_engine(), default=True)
        feed = TrafficFeed(network, services=[service])
        feed.apply([TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)])
        stats = service.stats()
        assert stats.traffic_updates == 1
        assert stats.traffic_evicted_routes == 0

    def test_reset_stats_keeps_cost_version(self):
        network = _line_network()
        service = _service_on(network)
        feed = TrafficFeed(network, services=[service])
        feed.apply([TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)])
        service.reset_stats()
        stats = service.stats()
        assert stats.traffic_updates == 0
        assert stats.cost_version == 1

    def test_in_flight_route_is_not_cached_across_a_traffic_update(self):
        """A response computed with pre-update costs must not land in the
        cache after the invalidation ran (the put guard snapshots the
        traffic generation before computing)."""
        from repro.routing import fastest_path
        from repro.service.engine import FunctionEngine

        network = grid_city_network(rows=6, cols=6, seed=1)
        service = RoutingService()
        feed = TrafficFeed(network, services=[service])
        crossed = network.edge(0, 6).key
        race_once = [True]

        def racy_route(source, destination):
            path = fastest_path(network, source, destination)
            if race_once:
                # The update lands while this request is still in flight.
                race_once.clear()
                feed.apply([TrafficUpdate.scale_by(*crossed, travel_time_s=1.5)])
            return path

        service.register("racy", FunctionEngine(network, racy_route))
        response = service.route(RouteRequest(source=0, destination=35))
        assert response.ok and not response.cache_hit
        # The stale answer was vetoed: the repeat request recomputes.
        repeat = service.route(RouteRequest(source=0, destination=35))
        assert not repeat.cache_hit
        # ... and once no update races the request, caching resumes.
        assert service.route(RouteRequest(source=0, destination=35)).cache_hit

    def test_served_routes_reflect_updated_costs(self):
        network = grid_city_network(rows=6, cols=6, seed=1)
        service = _service_on(network)
        feed = TrafficFeed(network, services=[service])
        first = service.route(RouteRequest(source=0, destination=35))
        for u, v in first.path.edge_keys[:2]:
            feed.apply([TrafficUpdate.scale_by(u, v, travel_time_s=500.0)])
        rerouted = service.route(RouteRequest(source=0, destination=35))
        with compiled_disabled():
            reference = dict_dijkstra(
                network, 0, 35, cost_function(CostFeature.TRAVEL_TIME)
            )
        assert rerouted.path.vertices == reference.vertices


# --------------------------------------------------------------------------- #
# Property tests: compiled == fresh dict search after randomized updates
# --------------------------------------------------------------------------- #
@st.composite
def traffic_networks(draw) -> RoadNetwork:
    """Small random directed networks with mixed road types (see
    test_compiled_graph.py); disconnected pairs are part of the contract."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=2, max_value=10))
    density = draw(st.floats(min_value=0.15, max_value=0.6))
    rng = random.Random(seed)
    network = RoadNetwork(name=f"traffic-random-{seed}")
    for i in range(n):
        network.add_vertex(i, lon=10.0 + rng.random() * 0.1, lat=56.0 + rng.random() * 0.1)
    road_types = list(RoadType)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < density:
                network.add_edge(u, v, road_type=rng.choice(road_types))
    return network


def _random_updates(network: RoadNetwork, rng: random.Random, count: int) -> list[TrafficUpdate]:
    keys = sorted(edge.key for edge in network.edges())
    updates = []
    for _ in range(count):
        source, target = rng.choice(keys)
        attribute = rng.choice(EDGE_COST_ATTRIBUTES)
        kind = rng.randrange(3)
        if kind == 0:
            updates.append(
                TrafficUpdate.set(source, target, **{attribute: rng.uniform(0.5, 5_000.0)})
            )
        elif kind == 1:
            updates.append(
                TrafficUpdate.scale_by(source, target, **{attribute: rng.uniform(0.2, 8.0)})
            )
        else:
            updates.append(
                TrafficUpdate.shift(source, target, **{attribute: rng.uniform(0.1, 500.0)})
            )
    return updates


TRAFFIC_SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestCompiledEqualsFreshDictAfterUpdates:
    """Acceptance: randomized update sequences keep compiled == dict."""

    @TRAFFIC_SETTINGS
    @given(
        traffic_networks(),
        st.integers(min_value=0, max_value=1_000),
        st.integers(min_value=1, max_value=25),
    )
    def test_dijkstra_all_features_after_updates(self, network, seed, n_updates):
        if network.edge_count == 0:
            return
        rng = random.Random(seed)
        view = network.compiled()
        feed = TrafficFeed(network)
        for update in _random_updates(network, rng, n_updates):
            feed.apply([update])
        assert network.compiled() is view  # never rebuilt
        assert view.cost_version == network.cost_version

        ids = sorted(network.vertex_ids())
        pairs = [(rng.choice(ids), rng.choice(ids)) for _ in range(5)]
        for feature in (CostFeature.DISTANCE, CostFeature.TRAVEL_TIME, CostFeature.FUEL):
            cost = cost_function(feature)
            for source, destination in pairs:
                try:
                    compiled_path = dijkstra(network, source, destination, cost).vertices
                except NoPathError:
                    compiled_path = "no-path"
                try:
                    dict_path = dict_dijkstra(network, source, destination, cost).vertices
                except NoPathError:
                    dict_path = "no-path"
                assert compiled_path == dict_path

    @TRAFFIC_SETTINGS
    @given(
        traffic_networks(),
        st.integers(min_value=0, max_value=1_000),
        st.integers(min_value=1, max_value=15),
    )
    def test_other_kernels_after_batched_updates(self, network, seed, n_updates):
        if network.edge_count == 0:
            return
        rng = random.Random(seed)
        feed = TrafficFeed(network)
        updates = _random_updates(network, rng, n_updates)
        # Apply as one transactional batch (composition exercised too).
        feed.apply(updates)

        ids = sorted(network.vertex_ids())
        source, destination = rng.choice(ids), rng.choice(ids)
        cost = cost_function(CostFeature.TRAVEL_TIME)
        blend = weighted_cost(
            {CostFeature.TRAVEL_TIME: 0.7, CostFeature.DISTANCE: 0.2, CostFeature.FUEL: 0.1}
        )

        def paths(fn_compiled, fn_dict):
            try:
                compiled_path = fn_compiled().vertices
            except NoPathError:
                compiled_path = "no-path"
            try:
                dict_path = fn_dict().vertices
            except NoPathError:
                dict_path = "no-path"
            return compiled_path, dict_path

        compiled_path, dict_path = paths(
            lambda: bidirectional_dijkstra(network, source, destination, cost),
            lambda: dict_bidirectional_dijkstra(network, source, destination, cost),
        )
        assert compiled_path == dict_path

        heuristic = heuristic_for(network, destination, CostFeature.TRAVEL_TIME)
        compiled_path, dict_path = paths(
            lambda: astar(network, source, destination, cost, heuristic),
            lambda: dict_astar(network, source, destination, cost, heuristic),
        )
        assert compiled_path == dict_path

        compiled_path, dict_path = paths(
            lambda: dijkstra(network, source, destination, blend),
            lambda: dict_dijkstra(network, source, destination, blend),
        )
        assert compiled_path == dict_path

        if source != destination:
            preference = PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=MAJOR_ROADS)
            compiled_path, dict_path = paths(
                lambda: preference_dijkstra(network, source, destination, preference),
                lambda: _dict_preference_search(network, source, destination, preference),
            )
            assert compiled_path == dict_path

    def test_interleaved_updates_and_queries_on_grid(self):
        """A deterministic serving-shaped scenario: query, patch, query."""
        network = grid_city_network(rows=8, cols=8, seed=4)
        view = network.compiled()
        feed = TrafficFeed(network)
        rng = random.Random(9)
        cost = cost_function(CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        congestion = synthetic_congestion(
            network, seed=11, fraction=0.15, peak_factor=4.0, steps=6
        )
        for batch in congestion:
            feed.apply(batch)
            for _ in range(4):
                source, destination = rng.choice(ids), rng.choice(ids)
                compiled_path = dijkstra(network, source, destination, cost)
                with compiled_disabled():
                    reference = dijkstra(network, source, destination, cost)
                assert compiled_path.vertices == reference.vertices
        assert network.compiled() is view
        assert view.cost_version == 6
