"""The reprolint static analyzer (:mod:`tools.reprolint`).

Each rule RL001–RL011 gets a positive fixture (the violation fires), a
negative fixture (the compliant idiom stays silent), and a suppression
fixture (``# reprolint: disable=...`` moves the finding to ``suppressed``).
Fixtures go through :func:`~tools.reprolint.lint_source` with a fake
repository-relative path, which is what drives each rule's scoping.

The integration tests at the bottom are the gate the CI ``lint`` job relies
on: the repository's own ``src``/``tests``/``benchmarks`` trees lint clean,
both in-process and through the ``python -m tools.reprolint`` CLI.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # `tools` lives at the repo root, not in src/
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import (  # noqa: E402
    ALL_RULES,
    Finding,
    LintResult,
    Suppressions,
    exit_code,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

#: Fake paths that place a fixture inside / outside each rule's scope.
COMPILED_PATH = "src/repro/network/compiled/example.py"
SERVICE_PATH = "src/repro/service/example.py"
NETWORK_PATH = "src/repro/network/example.py"
BENCH_PATH = "benchmarks/bench_example.py"
UNSCOPED_PATH = "src/repro/trajectories/example.py"


def _lint(source: str, path: str) -> LintResult:
    return lint_source(source, path, ALL_RULES)


def _codes(result: LintResult) -> list[str]:
    return [finding.rule_id for finding in result.findings]


# -------------------------------------------------------------------- #
# RL001 — version-stamp discipline
# -------------------------------------------------------------------- #
RL001_BAD = """\
class Store:
    def lookup(self, store, key):
        value = store._arrays["travel_time_s"].sum()
        self._weight_cache[key] = value
        return value
"""

RL001_GOOD = """\
class Store:
    def lookup(self, store, key):
        stamp = store.cost_version
        value = store._arrays["travel_time_s"].sum()
        self._weight_cache[key] = (stamp, value)
        return value
"""


class TestRL001VersionStamp:
    def test_unstamped_cache_population_is_flagged(self):
        result = _lint(RL001_BAD, COMPILED_PATH)
        assert _codes(result) == ["RL001"]
        (finding,) = result.findings
        assert finding.severity == "error"
        assert "_weight_cache" in finding.message
        assert finding.line == 4

    def test_stamped_population_is_clean(self):
        assert _lint(RL001_GOOD, COMPILED_PATH).ok

    def test_cache_reset_to_empty_is_clean(self):
        source = "class Store:\n    def clear(self):\n        self._memo = {}\n"
        assert _lint(source, COMPILED_PATH).ok

    def test_init_is_exempt(self):
        source = (
            "class Store:\n"
            "    def __init__(self, store):\n"
            "        self._memo = dict(store._arrays)\n"
        )
        assert _lint(source, COMPILED_PATH).ok

    def test_out_of_scope_path_is_clean(self):
        assert _lint(RL001_BAD, UNSCOPED_PATH).ok

    def test_line_suppression_moves_finding_to_suppressed(self):
        suppressed = RL001_BAD.replace(
            "self._weight_cache[key] = value",
            "self._weight_cache[key] = value  # reprolint: disable=RL001",
        )
        result = _lint(suppressed, COMPILED_PATH)
        assert result.ok
        assert [finding.rule_id for finding in result.suppressed] == ["RL001"]


# -------------------------------------------------------------------- #
# RL002 — lock discipline on guarded fields
# -------------------------------------------------------------------- #
RL002_BAD = """\
class Net:
    def rebuild(self):
        self._compiled = make_snapshot(self)
"""

RL002_GOOD = """\
class Net:
    def rebuild(self):
        with self._compiled_lock:
            self._compiled = make_snapshot(self)
"""


class TestRL002LockDiscipline:
    def test_unlocked_guarded_write_is_flagged(self):
        result = _lint(RL002_BAD, NETWORK_PATH)
        assert _codes(result) == ["RL002"]
        assert "_compiled" in result.findings[0].message

    def test_write_under_lock_is_clean(self):
        assert _lint(RL002_GOOD, NETWORK_PATH).ok

    def test_init_is_exempt(self):
        source = "class Net:\n    def __init__(self):\n        self._compiled = None\n"
        assert _lint(source, NETWORK_PATH).ok

    def test_unguarded_field_is_clean(self):
        source = "class Net:\n    def rebuild(self):\n        self._name = 'x'\n"
        assert _lint(source, NETWORK_PATH).ok

    def test_out_of_scope_path_is_clean(self):
        assert _lint(RL002_BAD, UNSCOPED_PATH).ok

    def test_next_line_suppression(self):
        suppressed = RL002_BAD.replace(
            "        self._compiled = make_snapshot(self)",
            "        # reprolint: disable-next-line=RL002 — lock-free by design.\n"
            "        self._compiled = make_snapshot(self)",
        )
        result = _lint(suppressed, NETWORK_PATH)
        assert result.ok
        assert [finding.rule_id for finding in result.suppressed] == ["RL002"]


# -------------------------------------------------------------------- #
# RL003 — kernel access only through dispatch
# -------------------------------------------------------------------- #
class TestRL003DispatchOnly:
    def test_kernel_module_import_is_flagged(self):
        source = "from repro.network.compiled.sparse import csr_reach\n"
        result = _lint(source, SERVICE_PATH)
        assert _codes(result) == ["RL003"]

    def test_kernel_name_import_is_flagged(self):
        source = "from repro.network.compiled import kernels\n"
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL003"]

    def test_dict_reference_import_is_flagged(self):
        source = "from repro.routing.dijkstra import dict_dijkstra\n"
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL003"]

    def test_plain_import_of_kernel_module_is_flagged(self):
        source = "import repro.network.compiled.batch\n"
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL003"]

    def test_dispatch_import_is_clean(self):
        source = "from repro.network.compiled import dispatch as _compiled\n"
        assert _lint(source, SERVICE_PATH).ok

    def test_graph_constants_import_is_clean(self):
        source = "from repro.network.compiled.graph import EDGE_COST_ATTRIBUTES\n"
        assert _lint(source, SERVICE_PATH).ok

    def test_out_of_scope_path_is_clean(self):
        source = "from repro.network.compiled import kernels\n"
        assert _lint(source, UNSCOPED_PATH).ok

    def test_file_suppression(self):
        source = (
            "# reprolint: disable-file=RL003 — benchmark harness measures kernels raw.\n"
            "from repro.network.compiled import kernels\n"
        )
        result = _lint(source, SERVICE_PATH)
        assert result.ok
        assert [finding.rule_id for finding in result.suppressed] == ["RL003"]


# -------------------------------------------------------------------- #
# RL004 — explicit dtypes in the compiled subsystem
# -------------------------------------------------------------------- #
class TestRL004DtypeContract:
    def test_missing_dtype_is_flagged(self):
        source = "import numpy as np\noffsets = np.zeros(5)\n"
        result = _lint(source, COMPILED_PATH)
        assert _codes(result) == ["RL004"]
        assert result.findings[0].severity == "warning"

    def test_dtype_keyword_is_clean(self):
        source = "import numpy as np\noffsets = np.zeros(5, dtype=np.int64)\n"
        assert _lint(source, COMPILED_PATH).ok

    def test_dtype_positional_is_clean(self):
        source = "import numpy as np\noffsets = np.full(5, 0.0, np.float64)\n"
        assert _lint(source, COMPILED_PATH).ok

    def test_custom_numpy_alias_is_recognized(self):
        source = "import numpy as xp\noffsets = xp.empty(3)\n"
        assert _codes(_lint(source, COMPILED_PATH)) == ["RL004"]

    def test_out_of_scope_path_is_clean(self):
        source = "import numpy as np\noffsets = np.zeros(5)\n"
        assert _lint(source, SERVICE_PATH).ok


# -------------------------------------------------------------------- #
# RL005 — no silent broad excepts in the serving layer
# -------------------------------------------------------------------- #
class TestRL005SilentExcept:
    def test_silent_broad_except_is_flagged(self):
        source = "try:\n    drain()\nexcept Exception:\n    pass\n"
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL005"]

    def test_bare_except_is_flagged(self):
        source = "try:\n    drain()\nexcept:\n    pass\n"
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL005"]

    def test_handled_broad_except_is_clean(self):
        source = "try:\n    drain()\nexcept Exception as exc:\n    errors.append(exc)\n"
        assert _lint(source, SERVICE_PATH).ok

    def test_narrow_silent_except_is_clean(self):
        source = "try:\n    drain()\nexcept KeyError:\n    pass\n"
        assert _lint(source, SERVICE_PATH).ok

    def test_out_of_scope_path_is_clean(self):
        source = "try:\n    drain()\nexcept Exception:\n    pass\n"
        assert _lint(source, UNSCOPED_PATH).ok


# -------------------------------------------------------------------- #
# RL006 — perf_counter, not wall clock, in timing-sensitive code
# -------------------------------------------------------------------- #
class TestRL006WallClock:
    def test_time_time_is_flagged(self):
        source = "import time\nstart = time.time()\n"
        assert _codes(_lint(source, BENCH_PATH)) == ["RL006"]

    def test_bare_time_import_and_call_are_flagged(self):
        source = "from time import time\nstart = time()\n"
        assert _codes(_lint(source, BENCH_PATH)) == ["RL006", "RL006"]

    def test_perf_counter_is_clean(self):
        source = "import time\nstart = time.perf_counter()\n"
        assert _lint(source, BENCH_PATH).ok

    def test_out_of_scope_path_is_clean(self):
        source = "import time\nstart = time.time()\n"
        assert _lint(source, UNSCOPED_PATH).ok


# -------------------------------------------------------------------- #
# RL007 — no mutable default arguments (everywhere)
# -------------------------------------------------------------------- #
class TestRL007MutableDefault:
    def test_dict_literal_default_is_flagged(self):
        source = "def route(request, cache={}):\n    return cache\n"
        assert _codes(_lint(source, UNSCOPED_PATH)) == ["RL007"]

    def test_keyword_only_list_default_is_flagged(self):
        source = "def route(request, *, hops=[]):\n    return hops\n"
        assert _codes(_lint(source, UNSCOPED_PATH)) == ["RL007"]

    def test_mutable_call_default_is_flagged(self):
        source = "def route(request, cache=dict()):\n    return cache\n"
        assert _codes(_lint(source, UNSCOPED_PATH)) == ["RL007"]

    def test_none_default_is_clean(self):
        source = "def route(request, cache=None):\n    return cache or {}\n"
        assert _lint(source, UNSCOPED_PATH).ok

    def test_frozen_call_default_is_clean(self):
        source = "def route(request, hops=tuple()):\n    return hops\n"
        assert _lint(source, UNSCOPED_PATH).ok


# -------------------------------------------------------------------- #
# RL008 — bounded blocking calls in the serving layer
# -------------------------------------------------------------------- #
TRAFFIC_PATH = "src/repro/traffic/example.py"


class TestRL008UnboundedBlocking:
    def test_queue_get_without_timeout_is_flagged(self):
        source = "def drain(self):\n    return self._queue.get()\n"
        assert _codes(_lint(source, TRAFFIC_PATH)) == ["RL008"]

    def test_queue_get_with_timeout_is_clean(self):
        source = "def drain(self):\n    return self._queue.get(timeout=0.05)\n"
        assert _lint(source, TRAFFIC_PATH).ok

    def test_queue_get_nonblocking_is_clean(self):
        source = "def drain(self):\n    return self._queue.get(block=False)\n"
        assert _lint(source, TRAFFIC_PATH).ok

    def test_dict_get_is_not_flagged(self):
        source = "def lookup(self, key):\n    return self._engines.get(key)\n"
        assert _lint(source, SERVICE_PATH).ok

    def test_future_result_without_timeout_is_flagged(self):
        source = "def wait(future):\n    return future.result()\n"
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL008"]

    def test_future_result_with_timeout_is_clean(self):
        source = "def wait(future):\n    return future.result(timeout=60.0)\n"
        assert _lint(source, SERVICE_PATH).ok

    def test_thread_join_without_timeout_is_flagged(self):
        source = "def stop(thread):\n    thread.join()\n"
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL008"]

    def test_thread_join_with_timeout_is_clean(self):
        source = "def stop(thread):\n    thread.join(timeout=5.0)\n"
        assert _lint(source, SERVICE_PATH).ok

    def test_str_join_is_not_flagged(self):
        source = "def fmt(parts):\n    return ', '.join(parts)\n"
        assert _lint(source, SERVICE_PATH).ok

    def test_condition_wait_without_timeout_is_flagged(self):
        source = "def park(self):\n    with self._idle:\n        self._idle.wait()\n"
        assert _codes(_lint(source, TRAFFIC_PATH)) == ["RL008"]

    def test_condition_wait_with_timeout_is_clean(self):
        source = (
            "def park(self):\n    with self._idle:\n"
            "        self._idle.wait(timeout=0.1)\n"
        )
        assert _lint(source, TRAFFIC_PATH).ok

    def test_out_of_scope_path_is_clean(self):
        source = "def drain(self):\n    return self._queue.get()\n"
        assert _lint(source, UNSCOPED_PATH).ok

    def test_suppression_comment_is_honored(self):
        source = (
            "def drain(self):\n"
            "    # reprolint: disable-next-line=RL008 — bounded by caller.\n"
            "    return self._queue.get()\n"
        )
        result = _lint(source, TRAFFIC_PATH)
        assert result.ok
        assert [finding.rule_id for finding in result.suppressed] == ["RL008"]


# -------------------------------------------------------------------- #
# RL009 — shared-memory segment lifecycle discipline
# -------------------------------------------------------------------- #
RL009_OWNER_BAD = """\
from multiprocessing import shared_memory

def export(total):
    shm = shared_memory.SharedMemory(create=True, size=total)
    return shm.name
"""

RL009_OWNER_GOOD = """\
from multiprocessing import shared_memory

def export(total):
    shm = shared_memory.SharedMemory(create=True, size=total)
    try:
        return build(shm)
    except Exception:
        shm.close()
        shm.unlink()
        raise
"""

RL009_ATTACH_BAD = """\
from multiprocessing import shared_memory

def peek(name):
    shm = shared_memory.SharedMemory(name=name)
    return bytes(shm.buf[:8])
"""

RL009_ATTACH_GOOD = """\
from multiprocessing import shared_memory

def peek(name):
    shm = shared_memory.SharedMemory(name=name)
    try:
        return bytes(shm.buf[:8])
    finally:
        shm.close()
"""

RL009_ATTACH_UNLINKS = """\
from multiprocessing import shared_memory

def steal(name):
    shm = shared_memory.SharedMemory(name=name)
    try:
        shm.unlink()
    finally:
        shm.close()
"""


class TestRL009SharedMemoryLifecycle:
    def test_owner_without_close_and_unlink_is_flagged(self):
        result = _lint(RL009_OWNER_BAD, COMPILED_PATH)
        assert _codes(result) == ["RL009"]
        (finding,) = result.findings
        assert "close" in finding.message and "unlink" in finding.message

    def test_owner_with_close_and_unlink_is_clean(self):
        assert _lint(RL009_OWNER_GOOD, COMPILED_PATH).ok

    def test_owner_with_statement_still_needs_unlink(self):
        source = (
            "from multiprocessing import shared_memory\n"
            "def export(total):\n"
            "    with shared_memory.SharedMemory(create=True, size=total) as shm:\n"
            "        fill(shm)\n"
        )
        assert _codes(_lint(source, COMPILED_PATH)) == ["RL009"]

    def test_owner_with_statement_plus_unlink_is_clean(self):
        source = (
            "from multiprocessing import shared_memory\n"
            "def export(total):\n"
            "    with shared_memory.SharedMemory(create=True, size=total) as shm:\n"
            "        fill(shm)\n"
            "        shm.unlink()\n"
        )
        assert _lint(source, COMPILED_PATH).ok

    def test_directly_returned_handle_transfers_the_obligation(self):
        source = (
            "from multiprocessing import shared_memory\n"
            "def open_segment(name):\n"
            "    return shared_memory.SharedMemory(name=name)\n"
        )
        assert _lint(source, COMPILED_PATH).ok

    def test_attach_without_close_is_flagged(self):
        result = _lint(RL009_ATTACH_BAD, SERVICE_PATH)
        assert _codes(result) == ["RL009"]
        (finding,) = result.findings
        assert "close-only" in finding.message

    def test_attach_with_close_is_clean(self):
        assert _lint(RL009_ATTACH_GOOD, SERVICE_PATH).ok

    def test_attach_side_unlink_is_flagged(self):
        result = _lint(RL009_ATTACH_UNLINKS, SERVICE_PATH)
        assert _codes(result) == ["RL009"]
        (finding,) = result.findings
        assert "only the creating owner" in finding.message

    def test_rule_applies_outside_src_too(self):
        assert _codes(_lint(RL009_ATTACH_BAD, BENCH_PATH)) == ["RL009"]

    def test_suppression_comment_is_honored(self):
        source = (
            "from multiprocessing import shared_memory\n"
            "def peek(name):\n"
            "    # reprolint: disable-next-line=RL009 — probe closed by caller.\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    return shm\n"
        )
        result = _lint(source, SERVICE_PATH)
        assert result.ok
        assert [finding.rule_id for finding in result.suppressed] == ["RL009"]


# -------------------------------------------------------------------- #
# RL010 — socket operations in the serving layer carry explicit timeouts
# -------------------------------------------------------------------- #
RL010_BAD = """\
def read_frame(sock):
    header = sock.recv(4)
    return header
"""

RL010_GOOD = """\
def read_frame(sock, timeout_s):
    sock.settimeout(timeout_s)
    header = sock.recv(4)
    return header
"""


class TestRL010SocketTimeout:
    def test_recv_without_settimeout_is_flagged(self):
        result = _lint(RL010_BAD, SERVICE_PATH)
        assert _codes(result) == ["RL010"]
        (finding,) = result.findings
        assert finding.severity == "error"
        assert "settimeout" in finding.message

    def test_recv_with_settimeout_in_same_function_is_clean(self):
        assert _lint(RL010_GOOD, SERVICE_PATH).ok

    def test_accept_without_settimeout_is_flagged(self):
        source = "def loop(listener):\n    conn, addr = listener.accept()\n"
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL010"]

    def test_settimeout_in_another_function_does_not_arm(self):
        source = (
            "def arm(sock):\n    sock.settimeout(5.0)\n"
            "def read(sock):\n    return sock.recv(4)\n"
        )
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL010"]

    def test_settimeout_none_is_flagged(self):
        # settimeout(None) draws its own finding, and it does not count as
        # arming the socket — the recv is still unbounded, so both fire.
        source = (
            "def read(sock):\n"
            "    sock.settimeout(None)\n"
            "    return sock.recv(4)\n"
        )
        result = _lint(source, SERVICE_PATH)
        assert _codes(result) == ["RL010", "RL010"]
        assert any("unbounded" in f.message for f in result.findings)

    def test_non_socket_receiver_is_clean(self):
        source = "def pull(transport):\n    return transport.recv(timeout_s=1.0)\n"
        assert _lint(source, SERVICE_PATH).ok

    def test_select_without_timeout_is_flagged(self):
        source = (
            "import select\n"
            "def poll(rlist):\n    return select.select(rlist, [], [])\n"
        )
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL010"]

    def test_select_with_timeout_is_clean(self):
        source = (
            "import select\n"
            "def poll(rlist):\n    return select.select(rlist, [], [], 0.5)\n"
        )
        assert _lint(source, SERVICE_PATH).ok

    def test_create_connection_without_timeout_is_flagged(self):
        source = (
            "import socket\n"
            "def dial(address):\n    return socket.create_connection(address)\n"
        )
        assert _codes(_lint(source, SERVICE_PATH)) == ["RL010"]

    def test_create_connection_with_timeout_is_clean(self):
        source = (
            "import socket\n"
            "def dial(address):\n"
            "    return socket.create_connection(address, timeout=5.0)\n"
        )
        assert _lint(source, SERVICE_PATH).ok

    def test_out_of_scope_path_is_clean(self):
        assert _lint(RL010_BAD, UNSCOPED_PATH).ok

    def test_suppression_comment_is_honored(self):
        source = RL010_BAD.replace(
            "    header = sock.recv(4)",
            "    # reprolint: disable-next-line=RL010 — armed by the caller.\n"
            "    header = sock.recv(4)",
        )
        result = _lint(source, SERVICE_PATH)
        assert result.ok
        assert [finding.rule_id for finding in result.suppressed] == ["RL010"]


# -------------------------------------------------------------------- #
# RL011 — durable-write discipline in durability/ and persistence.py
# -------------------------------------------------------------------- #
DURABILITY_PATH = "src/repro/service/durability/example.py"
PERSISTENCE_PATH = "src/repro/service/persistence.py"

RL011_RENAME_BAD = """\
import os

def publish(scratch, final):
    with open(scratch, "wb") as handle:
        handle.write(b"payload")
    os.replace(scratch, final)
"""

RL011_RENAME_GOOD = """\
import os

def publish(scratch, final):
    with open(scratch, "wb") as handle:
        handle.write(b"payload")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(scratch, final)
"""

RL011_HANDLE_BAD = """\
def journal(path, frame):
    handle = open(path, "ab")
    handle.write(frame)
    handle.flush()
"""

RL011_CHAIN_BAD = """\
def journal(path, frame):
    open(path, "ab").write(frame)
"""


class TestRL011DurabilityDiscipline:
    def test_rename_without_fsync_is_flagged(self):
        result = _lint(RL011_RENAME_BAD, DURABILITY_PATH)
        assert _codes(result) == ["RL011"]
        (finding,) = result.findings
        assert finding.severity == "error"
        assert "fsync" in finding.message

    def test_rename_after_fsync_is_clean(self):
        assert _lint(RL011_RENAME_GOOD, DURABILITY_PATH).ok

    def test_fsync_after_rename_does_not_count(self):
        source = (
            "import os\n"
            "def publish(scratch, final, dir_fd):\n"
            "    os.replace(scratch, final)\n"
            "    os.fsync(dir_fd)\n"
        )
        assert _codes(_lint(source, DURABILITY_PATH)) == ["RL011"]

    def test_fsync_helper_by_name_counts(self):
        source = (
            "import os\n"
            "def publish(scratch, final):\n"
            "    _fsync_file(scratch)\n"
            "    os.replace(scratch, final)\n"
        )
        assert _lint(source, DURABILITY_PATH).ok

    def test_os_rename_is_held_to_the_same_bar(self):
        source = RL011_RENAME_BAD.replace("os.replace", "os.rename")
        assert _codes(_lint(source, DURABILITY_PATH)) == ["RL011"]

    def test_unmanaged_handle_is_flagged(self):
        result = _lint(RL011_HANDLE_BAD, DURABILITY_PATH)
        assert _codes(result) == ["RL011"]
        assert "context-managed" in result.findings[0].message

    def test_with_managed_handle_is_clean(self):
        source = (
            "def journal(path, frame):\n"
            "    with open(path, 'ab') as handle:\n"
            "        handle.write(frame)\n"
        )
        assert _lint(source, DURABILITY_PATH).ok

    def test_self_attribute_owned_handle_is_clean(self):
        # The journal's long-lived active segment: opened once, stored on
        # the instance, closed by the owner's close()/rotation.
        source = (
            "class Journal:\n"
            "    def _reopen(self, path):\n"
            "        self._active = open(path, 'ab')\n"
        )
        assert _lint(source, DURABILITY_PATH).ok

    def test_local_variable_handle_is_not_ownership(self):
        assert _codes(_lint(RL011_HANDLE_BAD, DURABILITY_PATH)) == ["RL011"]

    def test_bare_open_write_chain_is_flagged(self):
        result = _lint(RL011_CHAIN_BAD, DURABILITY_PATH)
        assert _codes(result) == ["RL011"]
        assert "chain" in result.findings[0].message

    def test_gzip_and_fdopen_handles_are_covered(self):
        source = (
            "import gzip, os\n"
            "def save(fd, path):\n"
            "    raw = os.fdopen(fd, 'wb')\n"
            "    zipped = gzip.open(path, 'wb')\n"
        )
        assert _codes(_lint(source, DURABILITY_PATH)) == ["RL011", "RL011"]

    def test_os_open_raw_fd_is_not_a_file_handle(self):
        # os.open returns an fd (paired with os.close), not a file object —
        # the directory-fsync helpers rely on this shape.
        source = (
            "import os\n"
            "def fsync_dir(path):\n"
            "    fd = os.open(path, os.O_RDONLY)\n"
            "    try:\n"
            "        os.fsync(fd)\n"
            "    finally:\n"
            "        os.close(fd)\n"
        )
        assert _lint(source, DURABILITY_PATH).ok

    def test_persistence_module_is_in_scope(self):
        assert _codes(_lint(RL011_RENAME_BAD, PERSISTENCE_PATH)) == ["RL011"]

    def test_out_of_scope_service_path_is_clean(self):
        # The discipline is scoped to the crash-consistency layer; generic
        # service code is not held to it.
        assert _lint(RL011_RENAME_BAD, SERVICE_PATH).ok
        assert _lint(RL011_RENAME_BAD, UNSCOPED_PATH).ok

    def test_suppression_comment_is_honored(self):
        source = RL011_CHAIN_BAD.replace(
            "    open(path, \"ab\").write(frame)",
            "    # reprolint: disable-next-line=RL011 — throwaway debug dump.\n"
            "    open(path, \"ab\").write(frame)",
        )
        result = _lint(source, DURABILITY_PATH)
        assert result.ok
        assert [finding.rule_id for finding in result.suppressed] == ["RL011"]


# -------------------------------------------------------------------- #
# Engine: suppressions, errors, reporters, gating
# -------------------------------------------------------------------- #
class TestSuppressions:
    def test_all_wildcard_covers_every_rule(self):
        suppressions = Suppressions("x = 1  # reprolint: disable=all\n")
        finding = Finding("RL004", "m", "p.py", 1, 1)
        assert suppressions.covers(finding)

    def test_multiple_codes_on_one_comment(self):
        suppressions = Suppressions("x = 1  # reprolint: disable=RL001, RL004\n")
        assert suppressions.covers(Finding("RL001", "m", "p.py", 1, 1))
        assert suppressions.covers(Finding("RL004", "m", "p.py", 1, 1))
        assert not suppressions.covers(Finding("RL002", "m", "p.py", 1, 1))

    def test_file_scope_covers_any_line(self):
        suppressions = Suppressions("# reprolint: disable-file=RL006\n\nx = 1\n")
        assert suppressions.covers(Finding("RL006", "m", "p.py", 3, 1))

    def test_unrelated_comment_covers_nothing(self):
        suppressions = Suppressions("x = 1  # a normal comment\n")
        assert not suppressions.covers(Finding("RL001", "m", "p.py", 1, 1))


class TestEngine:
    def test_syntax_error_is_a_lint_error_not_a_crash(self):
        result = lint_source("def broken(:\n", "src/broken.py", ALL_RULES)
        assert not result.ok
        assert result.findings == []
        assert len(result.errors) == 1 and "syntax error" in result.errors[0]
        assert exit_code(result) == 1

    def test_exit_code_zero_on_clean(self):
        assert exit_code(lint_source("x = 1\n", "src/ok.py", ALL_RULES)) == 0

    def test_finding_render_format(self):
        finding = Finding("RL001", "boom", "src/a.py", 3, 7, severity="error")
        assert finding.render() == "src/a.py:3:7: RL001 [error] boom"

    def test_render_json_is_valid_and_complete(self):
        result = _lint(RL001_BAD, COMPILED_PATH)
        payload = json.loads(render_json(result, ALL_RULES))
        assert payload["ok"] is False
        assert payload["files"] == 1
        assert [entry["rule"] for entry in payload["findings"]] == ["RL001"]
        assert len(payload["rules"]) == len(ALL_RULES) == 11
        assert {rule.rule_id for rule in ALL_RULES} == {
            f"RL{i:03d}" for i in range(1, 12)
        }

    def test_render_text_summary_line(self):
        text = render_text(_lint("x = 1\n", "src/ok.py"), ALL_RULES)
        assert text.endswith("0 finding(s), 0 suppressed, 1 file(s), 11 rule(s)")

    def test_lint_paths_walks_directories(self, tmp_path):
        package = tmp_path / "src" / "repro" / "service"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(
            "try:\n    drain()\nexcept Exception:\n    pass\n", encoding="utf-8"
        )
        (package / "ok.py").write_text("x = 1\n", encoding="utf-8")
        result = lint_paths(["src"], ALL_RULES, root=tmp_path)
        assert result.files == 2
        assert _codes(result) == ["RL005"]
        assert result.findings[0].path == "src/repro/service/bad.py"


# -------------------------------------------------------------------- #
# Integration: the repository's own tree lints clean
# -------------------------------------------------------------------- #
class TestRepositoryIsClean:
    def test_repo_lints_clean_in_process(self):
        result = lint_paths(["src", "tests", "benchmarks"], ALL_RULES, root=REPO_ROOT)
        assert result.files > 100
        rendered = render_text(result, ALL_RULES)
        assert result.ok, f"repository must lint clean:\n{rendered}"
        # The deliberate, justified suppressions documented in the README.
        assert len(result.suppressed) >= 4

    def test_cli_json_run_exits_zero(self):
        process = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.reprolint",
                "src",
                "tests",
                "benchmarks",
                "--format",
                "json",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == 0, process.stdout + process.stderr
        payload = json.loads(process.stdout)
        assert payload["ok"] is True
        assert payload["findings"] == []

    def test_cli_select_unknown_rule_errors(self):
        process = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--select", "RL999", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert process.returncode == 2
        assert "unknown rule id" in process.stderr

    def test_cli_list_rules(self):
        process = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert process.returncode == 0
        for index in range(1, 8):
            assert f"RL00{index}" in process.stdout
