"""Tests for Algorithm 2 (preference-aware modified Dijkstra)."""

from __future__ import annotations

import pytest

from repro.exceptions import NoPathError
from repro.network import RoadNetwork, RoadType
from repro.preferences import MAJOR_ROADS, PreferenceVector, single_type_feature
from repro.routing import CostFeature, fastest_path, preference_dijkstra, shortest_path


class TestPreferenceDijkstra:
    def test_master_only_matches_plain_dijkstra(self, line_network):
        preference = PreferenceVector(master=CostFeature.DISTANCE, slave=None)
        path = preference_dijkstra(line_network, 0, 4, preference)
        assert path.vertices == shortest_path(line_network, 0, 4).vertices

    def test_travel_time_master_matches_fastest(self, line_network):
        preference = PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=None)
        path = preference_dijkstra(line_network, 0, 4, preference)
        assert path.vertices == fastest_path(line_network, 0, 4).vertices

    def test_slave_preference_pulls_route_onto_preferred_roads(self, line_network):
        # Distance-minimal route is the residential chain; preferring
        # motorways must steer the route onto the motorway detour.
        preference = PreferenceVector(master=CostFeature.DISTANCE, slave=MAJOR_ROADS)
        path = preference_dijkstra(line_network, 0, 4, preference)
        assert path.vertices == (0, 9, 4)

    def test_unsatisfiable_slave_falls_back_to_all_edges(self, line_network):
        # No secondary roads exist; the search must still find a path.
        preference = PreferenceVector(
            master=CostFeature.DISTANCE, slave=single_type_feature(RoadType.SECONDARY)
        )
        path = preference_dijkstra(line_network, 0, 4, preference)
        assert path.source == 0 and path.destination == 4

    def test_same_source_destination(self, line_network):
        preference = PreferenceVector(master=CostFeature.DISTANCE)
        assert preference_dijkstra(line_network, 2, 2, preference).is_trivial

    def test_disconnected_raises(self):
        network = RoadNetwork()
        network.add_vertex(1, 10.0, 56.0)
        network.add_vertex(2, 10.2, 56.0)
        preference = PreferenceVector(master=CostFeature.TRAVEL_TIME)
        with pytest.raises(NoPathError):
            preference_dijkstra(network, 1, 2, preference)

    def test_result_is_valid_path_on_grid(self, grid_network):
        preference = PreferenceVector(master=CostFeature.FUEL, slave=MAJOR_ROADS)
        path = preference_dijkstra(grid_network, 0, 99, preference)
        assert path.is_valid(grid_network)

    def test_slave_preference_never_disconnects(self, grid_network):
        # Residential-only preference still reaches any destination.
        preference = PreferenceVector(
            master=CostFeature.DISTANCE, slave=single_type_feature(RoadType.RESIDENTIAL)
        )
        path = preference_dijkstra(grid_network, 0, 55, preference)
        assert path.source == 0 and path.destination == 55

    def test_major_road_share_increases_with_major_preference(self, grid_network):
        free = preference_dijkstra(
            grid_network, 0, 99, PreferenceVector(master=CostFeature.DISTANCE, slave=None)
        )
        biased = preference_dijkstra(
            grid_network, 0, 99, PreferenceVector(master=CostFeature.DISTANCE, slave=MAJOR_ROADS)
        )

        def major_share(path):
            edges = grid_network.path_edges(path.vertices)
            if not edges:
                return 0.0
            return sum(1 for e in edges if e.road_type.is_major) / len(edges)

        assert major_share(biased) >= major_share(free)
