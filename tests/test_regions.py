"""Tests for the trajectory graph, modularity, Algorithm 1, and regions."""

from __future__ import annotations

import pytest

from repro.exceptions import ClusteringError
from repro.network import RoadNetwork, RoadType
from repro.regions import (
    BottomUpClustering,
    Region,
    TrajectoryGraph,
    cluster_trajectory_graph,
    format_region_size_table,
    modularity,
    modularity_gain,
    region_size_table,
)
from repro.routing import Path
from repro.trajectories import MatchedTrajectory


def _matched(trajectory_id: int, vertices: list[int], driver_id: int = 0) -> MatchedTrajectory:
    return MatchedTrajectory(
        trajectory_id=trajectory_id,
        driver_id=driver_id,
        path=Path.of(vertices),
        departure_time=0.0,
        duration_s=60.0,
    )


@pytest.fixture()
def figure3_network() -> RoadNetwork:
    """A small network reproducing the flavour of the paper's Figure 3.

    Vertices 0-3 form a dense type-1 core (D, K, X, Y analogue); vertices 4-6
    hang off it via type-2 edges; vertices 7-8 are a separate small component.
    """
    network = RoadNetwork(name="figure3")
    coords = {
        0: (10.000, 56.000),
        1: (10.004, 56.000),
        2: (10.000, 56.004),
        3: (10.004, 56.004),
        4: (10.010, 56.000),
        5: (10.010, 56.004),
        6: (10.014, 56.002),
        7: (10.030, 56.000),
        8: (10.034, 56.000),
    }
    for vid, (lon, lat) in coords.items():
        network.add_vertex(vid, lon, lat)
    core_edges = [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]
    for u, v in core_edges:
        network.add_edge(u, v, road_type=RoadType.PRIMARY, bidirectional=True)
    network.add_edge(1, 4, road_type=RoadType.RESIDENTIAL, bidirectional=True)
    network.add_edge(3, 5, road_type=RoadType.RESIDENTIAL, bidirectional=True)
    network.add_edge(4, 6, road_type=RoadType.RESIDENTIAL, bidirectional=True)
    network.add_edge(5, 6, road_type=RoadType.RESIDENTIAL, bidirectional=True)
    network.add_edge(7, 8, road_type=RoadType.RESIDENTIAL, bidirectional=True)
    network.add_edge(6, 7, road_type=RoadType.SECONDARY, bidirectional=True)
    return network


@pytest.fixture()
def figure3_trajectories() -> list[MatchedTrajectory]:
    """Trajectories that heavily cover the core and lightly cover the rest."""
    trajectories = []
    tid = 0
    for _ in range(10):
        trajectories.append(_matched(tid, [0, 1, 3, 2]))
        tid += 1
        trajectories.append(_matched(tid, [2, 3, 1, 0]))
        tid += 1
    for _ in range(2):
        trajectories.append(_matched(tid, [1, 4, 6]))
        tid += 1
        trajectories.append(_matched(tid, [3, 5, 6]))
        tid += 1
    trajectories.append(_matched(tid, [7, 8]))
    return trajectories


class TestTrajectoryGraph:
    def test_counts(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        assert graph.vertex_count == 9
        assert graph.edge_count >= 8

    def test_popularity_counts_traversals(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        # Edge (0, 1) is traversed by 20 core trajectories (both directions
        # count toward the same undirected edge).
        assert graph.edge_popularity(0, 1) == 20
        assert graph.edge_popularity(1, 0) == 20
        assert graph.edge_popularity(7, 8) == 1

    def test_vertex_popularity_is_sum(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        expected = sum(graph.edge_popularity(1, other) for other in graph.neighbors(1))
        assert graph.vertex_popularity(1) == expected

    def test_total_popularity(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        assert graph.total_popularity() == sum(e.popularity for e in graph.edges())

    def test_road_types_recorded(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        assert graph.edge_road_type(0, 1) is RoadType.PRIMARY
        assert graph.edge_road_type(1, 4) is RoadType.RESIDENTIAL

    def test_components(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        components = graph.connected_components()
        assert len(components) == 2
        assert {7, 8} in components

    def test_uncovered_edges_absent(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        assert not graph.has_edge(6, 7)  # no trajectory used the connector

    def test_coverage_ratio(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        assert graph.coverage_ratio(figure3_network) == pytest.approx(1.0)


class TestModularity:
    def test_gain_positive_for_strong_edge(self):
        # Strong edge between two moderately popular vertices.
        assert modularity_gain(50, 100, 100, 1000) > 0

    def test_gain_negative_for_weak_edge_between_hubs(self):
        assert modularity_gain(1, 500, 500, 1000) < 0

    def test_gain_zero_without_edge(self):
        assert modularity_gain(0, 100, 100, 1000) == 0.0

    def test_gain_zero_for_empty_graph(self):
        assert modularity_gain(10, 10, 10, 0) == 0.0

    def test_global_modularity_prefers_good_clustering(self):
        edges = {(0, 1): 10.0, (1, 2): 10.0, (2, 0): 10.0, (3, 4): 10.0, (4, 5): 10.0, (5, 3): 10.0, (2, 3): 1.0}
        total = sum(edges.values())
        good = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
        bad = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0, 5: 1}
        assert modularity(good, edges, total) > modularity(bad, edges, total)


class TestClustering:
    def test_empty_graph_rejected(self):
        with pytest.raises(ClusteringError):
            BottomUpClustering().cluster(TrajectoryGraph())

    def test_clusters_partition_vertices(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        result = cluster_trajectory_graph(graph)
        all_members = [v for cluster in result.clusters for v in cluster]
        assert sorted(all_members) == sorted(graph.covered_vertices())
        assert len(all_members) == len(set(all_members))

    def test_popular_vertices_merge_with_their_strongest_neighbour(
        self, figure3_network, figure3_trajectories
    ):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        result = cluster_trajectory_graph(graph)
        assignment = result.assignment()
        # The popular primary-road chain 0-1-3-2 merges pairwise (merging the
        # two hubs 1 and 3 directly gives a negative modularity gain, exactly
        # as the gain formula prescribes), and never mixes with the
        # residential branch.
        assert assignment[0] == assignment[1]
        assert assignment[2] == assignment[3]
        assert result.merges > 0

    def test_isolated_component_becomes_own_cluster(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        result = cluster_trajectory_graph(graph)
        assignment = result.assignment()
        assert assignment[7] != assignment[0]

    def test_road_type_constraint_separates_types(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        constrained = cluster_trajectory_graph(graph, enforce_road_types=True)
        assignment = constrained.assignment()
        # Vertex 4 connects to the core only via a residential edge; the
        # road-type constraint must keep it out of the primary-road core.
        assert assignment[4] != assignment[0]

    def test_unconstrained_clustering_merges_more(self, tiny, tiny_split):
        graph = TrajectoryGraph.from_trajectories(tiny.network, tiny_split.train)
        constrained = cluster_trajectory_graph(graph, enforce_road_types=True)
        unconstrained = cluster_trajectory_graph(graph, enforce_road_types=False)
        assert unconstrained.cluster_count <= constrained.cluster_count

    def test_cluster_road_types_assigned_to_aggregates(self, figure3_network, figure3_trajectories):
        graph = TrajectoryGraph.from_trajectories(figure3_network, figure3_trajectories)
        result = cluster_trajectory_graph(graph)
        assignment = result.assignment()
        core_cluster = assignment[0]
        assert result.cluster_road_types[core_cluster] is RoadType.PRIMARY

    def test_clustering_terminates_on_larger_instance(self, tiny, tiny_split):
        graph = TrajectoryGraph.from_trajectories(tiny.network, tiny_split.train)
        result = cluster_trajectory_graph(graph)
        assert result.cluster_count >= 1
        assert result.iterations > 0

    def test_singleton_graph(self):
        graph = TrajectoryGraph()
        graph.add_traversal(1, 2, RoadType.RESIDENTIAL)
        result = cluster_trajectory_graph(graph)
        all_members = {v for cluster in result.clusters for v in cluster}
        assert all_members == {1, 2}


class TestRegion:
    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            Region(region_id=0, vertices=frozenset())

    def test_centroid_and_area(self, grid_network):
        region = Region(region_id=0, vertices=frozenset({0, 1, 10, 11}))
        lon, lat = region.centroid(grid_network)
        box = grid_network.bounding_box()
        assert box.min_lon <= lon <= box.max_lon
        assert region.area_km2(grid_network) >= 0.0
        assert region.diameter_km(grid_network) > 0.0

    def test_functionality_top_k(self, grid_network):
        region = Region(region_id=1, vertices=frozenset(range(10)))
        functionality = region.functionality(grid_network, top_k=2)
        assert 1 <= len(functionality) <= 2
        assert all(isinstance(rt, RoadType) for rt in functionality)

    def test_contains_and_len(self):
        region = Region(region_id=2, vertices=frozenset({5, 6}))
        assert 5 in region
        assert 9 not in region
        assert len(region) == 2

    def test_region_size_table_counts_all_regions(self, grid_network):
        regions = [
            Region(region_id=0, vertices=frozenset({0, 1, 2})),
            Region(region_id=1, vertices=frozenset({50, 51, 61, 60})),
        ]
        rows = region_size_table(regions, grid_network)
        assert sum(row.count for row in rows) == len(regions)
        assert sum(row.percentage for row in rows) == pytest.approx(100.0)

    def test_format_region_size_table(self, grid_network):
        regions = [Region(region_id=0, vertices=frozenset({0, 1, 2}))]
        text = format_region_size_table(region_size_table(regions, grid_network), title="T4")
        assert "T4" in text
        assert "Max diameter" in text
