"""Shared-memory export of compiled snapshots (:mod:`repro.network.compiled.shm`).

The zero-copy contract: every array an owner exports comes back, through a
worker-side :func:`attach`, as a read-only C-contiguous view with the pinned
dtype and bit-identical contents; the header carries enough (magic, layout,
shape counters, cost version) to reject foreign segments and detect stale
cost state; and the owner/worker lifecycle split never leaks a segment —
including on failed exports.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.exceptions import NetworkError
from repro.network import grid_city_network
from repro.network.compiled import shm
from repro.network.compiled.graph import EDGE_COST_ATTRIBUTES


def _segment_exists(name: str) -> bool:
    try:
        probe = shm._attach_untracked(name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


@pytest.fixture
def network():
    return grid_city_network(3, 3)


@pytest.fixture
def segment(network):
    handle = shm.export_graph(network.compiled(), cost_version=network.cost_version)
    yield handle
    handle.close()
    handle.unlink()


class TestRoundTrip:
    def test_every_array_survives_bit_identical(self, network, segment):
        view = shm.attach(segment.spec)
        try:
            graph = network.compiled()
            for spec in segment.spec.arrays:
                attached = view.array(spec.name)
                assert np.array_equal(attached, segment.array(spec.name)), spec.name
                assert attached.dtype == shm.expected_dtype(spec.name), spec.name
                assert attached.flags.c_contiguous, spec.name
                assert not attached.flags.writeable, spec.name
            for attr in EDGE_COST_ATTRIBUTES:
                assert np.array_equal(view.cost_array(attr), graph.array(attr))
        finally:
            view.close()

    def test_header_counters_and_cost_version(self, network, segment):
        with shm.attach(segment.spec) as view:
            graph = network.compiled()
            assert view.vertex_count == graph.vertex_count
            assert view.edge_count == graph.edge_count
            assert view.cost_version == network.cost_version

    def test_edge_keys_table_maps_slots_back_to_edges(self, network, segment):
        with shm.attach(segment.spec) as view:
            edge_keys = view.array("edge_keys")
            for key, slot in network.compiled().topology.slot_of.items():
                assert (int(edge_keys[slot, 0]), int(edge_keys[slot, 1])) == key

    def test_view_close_is_idempotent_and_keeps_segment(self, segment):
        view = shm.attach(segment.spec)
        view.close()
        view.close()
        assert _segment_exists(segment.name)


class TestExportNormalization:
    def test_transposed_input_is_forced_contiguous(self):
        raw = np.asarray(np.zeros((2, 5), dtype=np.int64).T, order="F")
        assert not raw.flags.c_contiguous
        arr = shm._exportable("edge_keys", raw)
        assert arr.flags.c_contiguous and arr.dtype == np.int64

    def test_casted_input_is_normalized_to_pinned_dtype(self):
        arr = shm._exportable("offsets", np.arange(4, dtype=np.int32))
        assert arr.dtype == np.int64
        cost = shm._exportable("cost:distance_m", np.arange(4, dtype=np.float32))
        assert cost.dtype == np.float64

    def test_wrong_dimensionality_is_refused(self):
        with pytest.raises(NetworkError, match="1-dimensional"):
            shm._exportable("offsets", np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(NetworkError, match="2-dimensional"):
            shm._exportable("edge_keys", np.zeros(4, dtype=np.int64))

    def test_non_numeric_input_is_refused(self):
        with pytest.raises(NetworkError, match="cannot be exported"):
            shm._exportable("offsets", np.asarray(["a", "b"]))

    def test_unknown_array_name_is_refused(self):
        with pytest.raises(NetworkError, match="unknown shared-segment array"):
            shm.expected_dtype("mystery")


class TestCostPatches:
    def test_patch_updates_attached_views_in_place(self, network, segment):
        with shm.attach(segment.spec) as view:
            edge = next(iter(network.edges()))
            key = (edge.source, edge.target)
            slot = network.compiled().topology.slot_of[key]
            before = float(view.cost_array("travel_time_s")[slot])
            network.update_edge_costs({key: {"travel_time_s": before * 3.0}})
            written = segment.patch(
                network.compiled(), [slot], cost_version=network.cost_version
            )
            assert written == 1
            # Zero-copy: the already-attached view observes the patch live.
            assert view.cost_array("travel_time_s")[slot] == pytest.approx(before * 3.0)
            assert view.cost_version == network.cost_version

    def test_sync_network_replays_the_segment_delta(self, network, segment):
        edge = next(iter(network.edges()))
        key = (edge.source, edge.target)
        slot = network.compiled().topology.slot_of[key]
        network.update_edge_costs({key: {"distance_m": 777.0}})
        segment.patch(network.compiled(), [slot], cost_version=network.cost_version)

        stale = grid_city_network(3, 3)
        with shm.attach(segment.spec) as view:
            changed = shm.sync_network(stale, view)
            assert key in changed
            assert stale.edge(*key).distance_m == pytest.approx(777.0)
            assert shm.sync_network(stale, view) == frozenset()

    def test_adopt_shared_costs_serves_patches_zero_copy(self, network, segment):
        worker_net = grid_city_network(3, 3)
        with shm.attach(segment.spec) as view:
            graph = worker_net.compiled()
            assert shm.adopt_shared_costs(graph, view)
            edge = next(iter(network.edges()))
            key = (edge.source, edge.target)
            slot = network.compiled().topology.slot_of[key]
            network.update_edge_costs({key: {"fuel_ml": 424.2}})
            segment.patch(network.compiled(), [slot], cost_version=network.cost_version)
            # The adopted store aliases the segment, so the patch is visible
            # without any sync call.
            assert graph.array("fuel_ml")[slot] == pytest.approx(424.2)

    def test_adopt_refuses_a_diverged_store(self, network, segment):
        worker_net = grid_city_network(3, 3)
        edge = next(iter(worker_net.edges()))
        worker_net.update_edge_costs({(edge.source, edge.target): {"fuel_ml": 9.9}})
        with shm.attach(segment.spec) as view:
            assert not shm.adopt_shared_costs(worker_net.compiled(), view)


class TestTopologyVerification:
    def test_matching_snapshot_verifies(self, network, segment):
        with shm.attach(segment.spec) as view:
            assert shm.verify_topology(network.compiled(), view)

    def test_different_topology_is_rejected(self, segment):
        other = grid_city_network(4, 2)
        with shm.attach(segment.spec) as view:
            assert not shm.verify_topology(other.compiled(), view)

    def test_foreign_segment_fails_the_magic_check(self, segment):
        # A zeroed header is what a foreign / torn segment looks like.
        blank = shared_memory.SharedMemory(create=True, size=segment.spec.size)
        try:
            spec = shm.SegmentSpec(
                segment_name=blank.name,
                size=segment.spec.size,
                arrays=segment.spec.arrays,
                cost_attributes=segment.spec.cost_attributes,
            )
            with pytest.raises(NetworkError, match="bad magic"):
                shm.attach(spec)
        finally:
            blank.close()
            blank.unlink()


class TestLifecycle:
    def test_unlink_removes_the_name(self, network):
        handle = shm.export_graph(network.compiled())
        name = handle.name
        assert _segment_exists(name)
        handle.close()
        handle.unlink()
        assert not _segment_exists(name)
        with pytest.raises(FileNotFoundError):
            shm.attach(handle.spec)

    def test_unlink_is_idempotent(self, network):
        handle = shm.export_graph(network.compiled())
        handle.close()
        handle.unlink()
        handle.unlink()

    def test_context_manager_closes_and_unlinks(self, network):
        with shm.export_graph(network.compiled()) as handle:
            name = handle.name
            assert _segment_exists(name)
        assert not _segment_exists(name)

    def test_failed_export_does_not_leak_the_segment(self, network):
        name = "reprotest-failed-export"
        with pytest.raises((TypeError, ValueError)):
            shm.export_graph(network.compiled(), cost_version="not-an-int", name=name)
        assert not _segment_exists(name)

    def test_patch_after_close_is_refused(self, network):
        handle = shm.export_graph(network.compiled())
        handle.close()
        try:
            with pytest.raises(NetworkError, match="closed"):
                handle.patch(network.compiled(), [0], cost_version=1)
        finally:
            handle.unlink()
