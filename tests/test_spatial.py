"""Tests for spatial primitives (distances, projections, hulls, band matching)."""

from __future__ import annotations

import math

import pytest

from repro.network.spatial import (
    BoundingBox,
    LocalProjection,
    centroid,
    convex_hull,
    equirectangular_m,
    haversine_m,
    match_waypoints_to_polyline,
    max_diameter_km,
    midpoint,
    path_length_m,
    point_segment_distance_m,
    polygon_area_km2,
    project_point_to_segment,
)

AALBORG = (9.9217, 57.0488)
COPENHAGEN = (12.5683, 55.6761)


class TestDistances:
    def test_haversine_zero_for_identical_points(self):
        assert haversine_m(AALBORG, AALBORG) == pytest.approx(0.0)

    def test_haversine_is_symmetric(self):
        assert haversine_m(AALBORG, COPENHAGEN) == pytest.approx(
            haversine_m(COPENHAGEN, AALBORG)
        )

    def test_haversine_aalborg_copenhagen_is_about_230km(self):
        distance = haversine_m(AALBORG, COPENHAGEN)
        assert 200_000 < distance < 260_000

    def test_equirectangular_close_to_haversine_at_city_scale(self):
        a = (10.0, 56.0)
        b = (10.05, 56.03)
        assert equirectangular_m(a, b) == pytest.approx(haversine_m(a, b), rel=0.01)

    def test_one_degree_latitude_is_about_111km(self):
        assert haversine_m((10.0, 56.0), (10.0, 57.0)) == pytest.approx(111_000, rel=0.01)

    def test_path_length_sums_segments(self):
        points = [(10.0, 56.0), (10.0, 56.01), (10.0, 56.02)]
        expected = equirectangular_m(points[0], points[1]) + equirectangular_m(points[1], points[2])
        assert path_length_m(points) == pytest.approx(expected)

    def test_path_length_of_single_point_is_zero(self):
        assert path_length_m([(10.0, 56.0)]) == 0.0


class TestCentroidAndMidpoint:
    def test_midpoint_is_average(self):
        assert midpoint((0.0, 0.0), (2.0, 4.0)) == (1.0, 2.0)

    def test_centroid_of_square(self):
        points = [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]
        assert centroid(points) == (1.0, 1.0)

    def test_centroid_of_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestProjection:
    def test_roundtrip(self):
        projection = LocalProjection(ref_lon=10.0, ref_lat=56.0)
        point = (10.03, 56.02)
        assert projection.to_lonlat(projection.to_xy(point)) == pytest.approx(point, abs=1e-9)

    def test_projection_distances_match_equirectangular(self):
        projection = LocalProjection(ref_lon=10.0, ref_lat=56.0)
        a, b = (10.0, 56.0), (10.02, 56.01)
        ax, ay = projection.to_xy(a)
        bx, by = projection.to_xy(b)
        planar = math.hypot(bx - ax, by - ay)
        assert planar == pytest.approx(equirectangular_m(a, b), rel=0.01)


class TestPointSegment:
    def test_point_on_segment_has_zero_distance(self):
        a, b = (10.0, 56.0), (10.02, 56.0)
        on_segment = (10.01, 56.0)
        assert point_segment_distance_m(on_segment, a, b) == pytest.approx(0.0, abs=0.5)

    def test_point_beyond_endpoint_clamps(self):
        a, b = (10.0, 56.0), (10.01, 56.0)
        beyond = (10.03, 56.0)
        expected = equirectangular_m(beyond, b)
        assert point_segment_distance_m(beyond, a, b) == pytest.approx(expected, rel=0.02)

    def test_projection_fraction_midpoint(self):
        a, b = (10.0, 56.0), (10.02, 56.0)
        _, fraction = project_point_to_segment((10.01, 56.001), a, b)
        assert fraction == pytest.approx(0.5, abs=0.02)

    def test_degenerate_segment(self):
        a = (10.0, 56.0)
        distance, fraction = project_point_to_segment((10.001, 56.0), a, a)
        assert fraction == 0.0
        assert distance > 0


class TestConvexHull:
    def test_hull_of_square_with_interior_point(self):
        points = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.5, 0.5)]
        hull = convex_hull(points)
        assert len(hull) == 4
        assert (0.5, 0.5) not in hull

    def test_hull_of_two_points(self):
        points = [(0.0, 0.0), (1.0, 1.0)]
        assert sorted(convex_hull(points)) == sorted(points)

    def test_collinear_points_produce_degenerate_hull(self):
        points = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]
        hull = convex_hull(points)
        assert len(hull) <= 2 or polygon_area_km2(hull) == pytest.approx(0.0)

    def test_area_of_known_square(self):
        # Roughly 1.113 km x 1.113 km at lat 0 for 0.01 degrees.
        square = [(0.0, 0.0), (0.01, 0.0), (0.01, 0.01), (0.0, 0.01)]
        area = polygon_area_km2(convex_hull(square))
        assert area == pytest.approx(1.113 * 1.113, rel=0.02)

    def test_max_diameter_of_square(self):
        square = [(0.0, 0.0), (0.01, 0.0), (0.01, 0.01), (0.0, 0.01)]
        diameter = max_diameter_km(square)
        assert diameter == pytest.approx(1.113 * math.sqrt(2), rel=0.02)

    def test_max_diameter_single_point_is_zero(self):
        assert max_diameter_km([(1.0, 1.0)]) == 0.0


class TestBoundingBox:
    def test_contains(self):
        box = BoundingBox.of([(10.0, 56.0), (10.1, 56.1)])
        assert box.contains((10.05, 56.05))
        assert not box.contains((10.2, 56.05))

    def test_expanded_grows_box(self):
        box = BoundingBox.of([(10.0, 56.0), (10.1, 56.1)])
        bigger = box.expanded(1_000.0)
        assert bigger.min_lon < box.min_lon
        assert bigger.max_lat > box.max_lat

    def test_width_and_height(self):
        box = BoundingBox.of([(10.0, 56.0), (10.0, 57.0)])
        assert box.height_km == pytest.approx(111.3, rel=0.01)
        assert box.width_km == pytest.approx(0.0, abs=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.of([])


class TestWaypointBandMatching:
    def _straight_polyline(self):
        return [(10.0 + i * 0.001, 56.0) for i in range(11)]

    def test_waypoints_on_path_match_fully(self):
        polyline = self._straight_polyline()
        waypoints = [polyline[0], polyline[5], polyline[10]]
        matched, total = match_waypoints_to_polyline(waypoints, polyline, band_m=10.0)
        assert matched == pytest.approx(total, rel=0.01)

    def test_waypoints_far_away_match_nothing(self):
        polyline = self._straight_polyline()
        waypoints = [(10.0, 56.5), (10.005, 56.5)]
        matched, _ = match_waypoints_to_polyline(waypoints, polyline, band_m=10.0)
        assert matched == 0.0

    def test_partial_match(self):
        polyline = self._straight_polyline()
        # Only the first half of the waypoints are on the path.
        waypoints = [polyline[0], polyline[5], (10.02, 56.5)]
        matched, total = match_waypoints_to_polyline(waypoints, polyline, band_m=10.0)
        assert 0.0 < matched < total

    def test_empty_waypoints(self):
        polyline = self._straight_polyline()
        matched, total = match_waypoints_to_polyline([], polyline)
        assert matched == 0.0
        assert total > 0.0

    def test_matched_never_exceeds_total(self):
        polyline = self._straight_polyline()
        waypoints = polyline * 2
        matched, total = match_waypoints_to_polyline(waypoints, polyline, band_m=50.0)
        assert matched <= total
