"""Tests for the preference model: features, vectors, and similarity functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import RoadType
from repro.preferences import (
    FeatureCatalog,
    LOCAL_ROADS,
    MAJOR_ROADS,
    PreferenceVector,
    combined_feature,
    default_road_condition_features,
    jaccard,
    path_similarity,
    path_similarity_union,
    region_edge_similarity,
    single_type_feature,
)
from repro.regions.region_graph import RegionEdge
from repro.routing import CostFeature, Path


class TestFeatures:
    def test_single_type_feature(self):
        feature = single_type_feature(RoadType.MOTORWAY)
        assert feature.satisfied_by(RoadType.MOTORWAY)
        assert not feature.satisfied_by(RoadType.RESIDENTIAL)

    def test_combined_feature(self):
        feature = combined_feature(RoadType.MOTORWAY, RoadType.TRUNK)
        assert feature.satisfied_by(RoadType.TRUNK)
        assert "motorway" in feature.name and "trunk" in feature.name

    def test_major_and_local_disjoint(self):
        assert not (MAJOR_ROADS.road_types & LOCAL_ROADS.road_types)

    def test_default_catalog_has_all_singles(self):
        features = default_road_condition_features()
        names = {f.name for f in features}
        for road_type in RoadType:
            assert road_type.osm_tag in names

    def test_catalog_dimensions(self):
        catalog = FeatureCatalog()
        assert catalog.n_cost == 3
        assert catalog.n_road == len(default_road_condition_features())
        assert catalog.n_features == catalog.n_cost + catalog.n_road
        assert len(catalog.column_names()) == catalog.n_features

    def test_catalog_column_round_trip(self):
        catalog = FeatureCatalog()
        for feature in catalog.cost_features:
            assert catalog.cost_feature_at(catalog.cost_column(feature)) is feature
        for feature in catalog.road_condition_features:
            assert catalog.road_feature_at(catalog.road_column(feature)) == feature

    def test_catalog_requires_cost_feature(self):
        with pytest.raises(ValueError):
            FeatureCatalog(cost_features=[])

    def test_catalog_column_ranges(self):
        catalog = FeatureCatalog()
        assert list(catalog.cost_columns()) == list(range(catalog.n_cost))
        assert list(catalog.road_columns()) == list(range(catalog.n_cost, catalog.n_features))


class TestPreferenceVector:
    def test_row_encoding_sets_expected_columns(self):
        catalog = FeatureCatalog()
        vector = PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=MAJOR_ROADS)
        row = vector.to_row(catalog)
        assert row[catalog.cost_column(CostFeature.TRAVEL_TIME)] == 1.0
        assert row[catalog.road_column(MAJOR_ROADS)] == 1.0
        assert row.sum() == 2.0

    def test_row_encoding_without_slave(self):
        catalog = FeatureCatalog()
        row = PreferenceVector(master=CostFeature.DISTANCE).to_row(catalog)
        assert row.sum() == 1.0

    def test_from_row_round_trip(self):
        catalog = FeatureCatalog()
        original = PreferenceVector(master=CostFeature.FUEL, slave=LOCAL_ROADS)
        decoded = PreferenceVector.from_row(original.to_row(catalog), catalog)
        assert decoded == original

    def test_from_row_null(self):
        catalog = FeatureCatalog()
        assert PreferenceVector.from_row(np.zeros(catalog.n_features), catalog) is None

    def test_from_row_fractional_uses_argmax(self):
        catalog = FeatureCatalog()
        row = np.zeros(catalog.n_features)
        row[catalog.cost_column(CostFeature.DISTANCE)] = 0.3
        row[catalog.cost_column(CostFeature.TRAVEL_TIME)] = 0.6
        row[catalog.road_column(MAJOR_ROADS)] = 0.4
        decoded = PreferenceVector.from_row(row, catalog)
        assert decoded is not None
        assert decoded.master is CostFeature.TRAVEL_TIME
        assert decoded.slave == MAJOR_ROADS

    def test_similarity_identical(self):
        a = PreferenceVector(master=CostFeature.DISTANCE, slave=MAJOR_ROADS)
        assert a.similarity(a) == 1.0

    def test_similarity_disjoint(self):
        a = PreferenceVector(master=CostFeature.DISTANCE, slave=MAJOR_ROADS)
        b = PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=LOCAL_ROADS)
        assert a.similarity(b) == 0.0

    def test_similarity_partial(self):
        a = PreferenceVector(master=CostFeature.DISTANCE, slave=MAJOR_ROADS)
        b = PreferenceVector(master=CostFeature.DISTANCE, slave=LOCAL_ROADS)
        assert 0.0 < a.similarity(b) < 1.0

    def test_similarity_with_none(self):
        a = PreferenceVector(master=CostFeature.DISTANCE)
        assert a.similarity(None) == 0.0


class TestPathSimilarity:
    def test_identical_paths(self, line_network):
        path = Path.of([0, 1, 2, 3])
        assert path_similarity(line_network, path, path) == 1.0
        assert path_similarity_union(line_network, path, path) == 1.0

    def test_disjoint_paths(self, line_network):
        ground = Path.of([0, 1, 2])
        other = Path.of([0, 9, 4])
        assert path_similarity(line_network, ground, other) == 0.0
        assert path_similarity_union(line_network, ground, other) == 0.0

    def test_partial_overlap_weighted_by_length(self, line_network):
        ground = Path.of([0, 1, 2, 3, 4])          # 4 km of residential edges
        constructed = Path.of([0, 1, 2])           # shares 2 km
        assert path_similarity(line_network, ground, constructed) == pytest.approx(0.5)

    def test_union_similarity_is_symmetric(self, line_network):
        a = Path.of([0, 1, 2, 3])
        b = Path.of([1, 2, 3, 4])
        assert path_similarity_union(line_network, a, b) == pytest.approx(
            path_similarity_union(line_network, b, a)
        )

    def test_eq1_not_symmetric_in_general(self, line_network):
        ground = Path.of([0, 1, 2, 3, 4])
        constructed = Path.of([0, 1, 2])
        forward = path_similarity(line_network, ground, constructed)
        backward = path_similarity(line_network, constructed, ground)
        assert forward != backward

    def test_union_leq_eq1(self, line_network):
        ground = Path.of([0, 1, 2, 3])
        constructed = Path.of([0, 1, 2, 3, 4])
        assert path_similarity_union(line_network, ground, constructed) <= path_similarity(
            line_network, ground, constructed
        )

    def test_trivial_paths(self, line_network):
        assert path_similarity(line_network, Path.of([2]), Path.of([2])) == 1.0
        assert path_similarity(line_network, Path.of([2]), Path.of([3])) == 0.0


class TestRegionEdgeSimilarity:
    def _edge(self, distance_m: float, types: set) -> RegionEdge:
        return RegionEdge(
            region_a=0, region_b=1, kind="T", centroid_distance_m=distance_m,
            functionality=frozenset(types),
        )

    def test_jaccard(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 0.0

    def test_identical_edges_have_similarity_two(self):
        edge = self._edge(1000.0, {(RoadType.PRIMARY, RoadType.RESIDENTIAL)})
        assert region_edge_similarity(edge, edge) == pytest.approx(2.0)

    def test_distance_ratio_component(self):
        a = self._edge(1000.0, {(RoadType.PRIMARY, RoadType.PRIMARY)})
        b = self._edge(2000.0, {(RoadType.SECONDARY, RoadType.SECONDARY)})
        assert region_edge_similarity(a, b) == pytest.approx(0.5)

    def test_functionality_component(self):
        shared = {(RoadType.PRIMARY, RoadType.PRIMARY)}
        a = self._edge(1000.0, shared)
        b = self._edge(1000.0, shared | {(RoadType.PRIMARY, RoadType.SECONDARY)})
        assert region_edge_similarity(a, b) == pytest.approx(1.0 + 0.5)

    def test_zero_distances(self):
        a = self._edge(0.0, set())
        b = self._edge(0.0, set())
        assert region_edge_similarity(a, b) == pytest.approx(1.0)
        c = self._edge(100.0, set())
        assert region_edge_similarity(a, c) == pytest.approx(0.0)

    def test_symmetry(self):
        a = self._edge(1500.0, {(RoadType.PRIMARY, RoadType.RESIDENTIAL)})
        b = self._edge(900.0, {(RoadType.PRIMARY, RoadType.PRIMARY)})
        assert region_edge_similarity(a, b) == pytest.approx(region_edge_similarity(b, a))
