"""Shared fixtures: small deterministic networks, scenarios, and fitted models.

Expensive artifacts (the fitted L2R pipeline, generated scenarios) are
session-scoped so the suite stays fast while still exercising the real
pipeline end to end.
"""

from __future__ import annotations

import pytest

from repro.core import L2RConfig, LearnToRoute
from repro.datasets import tiny_scenario
from repro.datasets.splits import split_by_id
from repro.network import RoadNetwork, RoadType, grid_city_network, small_demo_network
from repro.regions import TrajectoryGraph, build_region_graph, cluster_trajectory_graph
from repro.trajectories import GeneratorConfig, TrajectoryGenerator


@pytest.fixture(scope="session")
def demo_network() -> RoadNetwork:
    """A 6x6 grid network with arterials (36 vertices, deterministic)."""
    return small_demo_network(seed=3)


@pytest.fixture(scope="session")
def grid_network() -> RoadNetwork:
    """A 10x10 grid city used by routing and clustering tests."""
    return grid_city_network(rows=10, cols=10, block_m=300.0, seed=5, name="grid10")


@pytest.fixture()
def line_network() -> RoadNetwork:
    """A hand-built 5-vertex line network with mixed road types.

    Layout: 0 -1km- 1 -1km- 2 -1km- 3 -1km- 4, plus a 2.5 km motorway
    shortcut 0 -> 4 that is longer but much faster.
    """
    network = RoadNetwork(name="line")
    for i in range(5):
        network.add_vertex(i, lon=10.0 + i * 0.012, lat=56.0)
    network.add_vertex(9, lon=10.0 + 2 * 0.012, lat=56.02)
    for i in range(4):
        network.add_edge(i, i + 1, road_type=RoadType.RESIDENTIAL, distance_m=1_000.0, bidirectional=True)
    network.add_edge(0, 9, road_type=RoadType.MOTORWAY, distance_m=2_600.0, bidirectional=True)
    network.add_edge(9, 4, road_type=RoadType.MOTORWAY, distance_m=2_600.0, bidirectional=True)
    return network


@pytest.fixture(scope="session")
def tiny() -> "object":
    """The tiny synthetic scenario (network + generated trajectories)."""
    return tiny_scenario(seed=3, n_trajectories=120)


@pytest.fixture(scope="session")
def tiny_split(tiny):
    """Train/test split of the tiny scenario."""
    return split_by_id(tiny.trajectories, train_fraction=0.75)


@pytest.fixture(scope="session")
def fitted_l2r(tiny, tiny_split) -> LearnToRoute:
    """An L2R pipeline fitted on the tiny scenario's training set."""
    return LearnToRoute(L2RConfig()).fit(tiny.network, tiny_split.train)


@pytest.fixture(scope="session")
def tiny_region_graph(tiny, tiny_split):
    """A region graph built directly (without the full pipeline)."""
    trajectory_graph = TrajectoryGraph.from_trajectories(tiny.network, tiny_split.train)
    clustering = cluster_trajectory_graph(trajectory_graph)
    return build_region_graph(tiny.network, clustering, tiny_split.train)


@pytest.fixture(scope="session")
def generated_grid(grid_network):
    """Generated trajectories on the 10x10 grid (used by substrate tests)."""
    config = GeneratorConfig(n_drivers=10, n_trajectories=80, hotspot_count=4, seed=9)
    return TrajectoryGenerator(grid_network, config).generate()
