"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network import RoadNetwork, RoadType, convex_hull, equirectangular_m, haversine_m, polygon_area_km2
from repro.network.spatial import project_point_to_segment
from repro.preferences import FeatureCatalog, PreferenceVector, jaccard
from repro.preferences.similarity import path_similarity, path_similarity_union
from repro.regions.modularity import modularity_gain
from repro.routing import CostFeature, Path, fuel_consumption_ml
from repro.routing.costs import ALL_COST_FEATURES
from repro.preferences.features import default_road_condition_features
from repro.trajectories.statistics import D1_DISTANCE_BANDS_KM, D2_DISTANCE_BANDS_KM, band_index

# Coordinates around a mid-latitude city, small enough to stay planar.
lons = st.floats(min_value=9.0, max_value=11.0, allow_nan=False, allow_infinity=False)
lats = st.floats(min_value=55.0, max_value=57.0, allow_nan=False, allow_infinity=False)
points = st.tuples(lons, lats)


class TestSpatialProperties:
    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a), rel=1e-9)
        assert equirectangular_m(a, b) == pytest.approx(equirectangular_m(b, a), rel=1e-9)

    @given(points, points)
    def test_distance_non_negative_and_identity(self, a, b):
        assert haversine_m(a, b) >= 0.0
        assert haversine_m(a, a) == pytest.approx(0.0, abs=1e-6)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        ab = haversine_m(a, b)
        bc = haversine_m(b, c)
        ac = haversine_m(a, c)
        assert ac <= ab + bc + 1e-6

    @given(st.lists(points, min_size=1, max_size=25))
    def test_convex_hull_subset_and_area_non_negative(self, pts):
        hull = convex_hull(pts)
        assert set(hull) <= set(pts)
        assert polygon_area_km2(hull) >= 0.0

    @given(points, points, points)
    def test_point_segment_projection_fraction_bounds(self, p, a, b):
        distance, fraction = project_point_to_segment(p, a, b)
        assert distance >= 0.0
        assert 0.0 <= fraction <= 1.0


class TestCostProperties:
    @given(st.floats(min_value=1.0, max_value=100_000.0), st.floats(min_value=5.0, max_value=130.0))
    def test_fuel_positive_and_monotone_in_distance(self, distance, speed):
        assert fuel_consumption_ml(distance, speed) > 0.0
        assert fuel_consumption_ml(distance * 2, speed) == pytest.approx(
            2 * fuel_consumption_ml(distance, speed), rel=1e-9
        )

    @given(
        st.floats(min_value=0.0, max_value=1_000.0),
        st.floats(min_value=0.0, max_value=10_000.0),
        st.floats(min_value=0.0, max_value=10_000.0),
        st.floats(min_value=1.0, max_value=100_000.0),
    )
    def test_modularity_gain_bounded(self, edge_pop, pop_i, pop_j, total):
        gain = modularity_gain(edge_pop, pop_i, pop_j, total)
        # The gain never exceeds the edge's share of the total popularity and
        # is exactly zero for non-adjacent vertices.
        assert gain <= edge_pop / total + 1e-12
        if edge_pop == 0.0:
            assert gain == 0.0


class TestSimilarityProperties:
    @given(st.lists(st.sets(st.integers(0, 20)), min_size=2, max_size=2))
    def test_jaccard_bounds_and_symmetry(self, sets):
        a, b = sets
        value = jaccard(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaccard(b, a))

    @given(data=st.data())
    @settings(suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow], deadline=None, max_examples=30)
    def test_path_similarity_bounds_on_random_grid_paths(self, grid_network, data):
        vertices = list(grid_network.vertex_ids())
        start = data.draw(st.sampled_from(vertices))
        # Random walks of bounded length along outgoing edges.
        def walk(seed_vertex):
            path = [seed_vertex]
            for _ in range(data.draw(st.integers(1, 8))):
                successors = list(grid_network.successors(path[-1]))
                if not successors:
                    break
                path.append(data.draw(st.sampled_from(successors)))
            return Path.of(path)

        p1, p2 = walk(start), walk(start)
        eq1 = path_similarity(grid_network, p1, p2)
        eq4 = path_similarity_union(grid_network, p1, p2)
        assert 0.0 <= eq4 <= eq1 <= 1.0
        assert path_similarity(grid_network, p1, p1) == pytest.approx(1.0)


class TestPreferenceEncodingProperties:
    @given(data=st.data())
    def test_to_row_from_row_round_trip(self, data):
        catalog = FeatureCatalog()
        master = data.draw(st.sampled_from(list(ALL_COST_FEATURES)))
        slave = data.draw(st.one_of(st.none(), st.sampled_from(default_road_condition_features())))
        vector = PreferenceVector(master=master, slave=slave)
        decoded = PreferenceVector.from_row(vector.to_row(catalog), catalog)
        assert decoded == vector

    @given(data=st.data())
    def test_similarity_bounds_and_symmetry(self, data):
        features = default_road_condition_features()
        def vector():
            return PreferenceVector(
                master=data.draw(st.sampled_from(list(ALL_COST_FEATURES))),
                slave=data.draw(st.one_of(st.none(), st.sampled_from(features))),
            )
        a, b = vector(), vector()
        assert 0.0 <= a.similarity(b) <= 1.0
        assert a.similarity(b) == pytest.approx(b.similarity(a))
        assert a.similarity(a) == pytest.approx(1.0)


class TestStatisticsProperties:
    @given(st.floats(min_value=0.0, max_value=600.0, allow_nan=False))
    def test_band_index_consistent(self, distance_km):
        for bands in (D1_DISTANCE_BANDS_KM, D2_DISTANCE_BANDS_KM):
            index = band_index(distance_km, bands)
            if index is not None:
                lo, hi = bands[index]
                assert lo <= distance_km <= hi or (distance_km == 0.0 and index == 0)


class TestPathProperties:
    @given(st.lists(st.integers(0, 1_000), min_size=1, max_size=30))
    def test_path_roundtrip_and_edges(self, vertices):
        path = Path.of(vertices)
        assert list(path) == vertices
        assert len(path.edge_keys) == len(vertices) - 1

    @given(st.lists(st.integers(0, 100), min_size=2, max_size=10), st.lists(st.integers(0, 100), min_size=2, max_size=10))
    def test_splice_length(self, a, b):
        first = Path.of(a)
        second = Path.of([a[-1]] + b)
        combined = first.splice(second)
        assert len(combined) == len(first) + len(second) - 1
        assert combined.source == first.source
        assert combined.destination == second.destination


class TestRoadNetworkProperties:
    @given(st.integers(2, 12), st.integers(0, 2**30))
    @settings(max_examples=15, deadline=None)
    def test_generated_grid_edges_have_positive_weights(self, size, seed):
        from repro.network import grid_city_network

        network = grid_city_network(rows=size, cols=size, seed=seed)
        assert network.vertex_count == size * size
        for edge in network.edges():
            assert edge.distance_m > 0
            assert edge.travel_time_s > 0
            assert edge.fuel_ml > 0
            assert isinstance(edge.road_type, RoadType)
