"""Tests for preference learning (Step 1), solvers, transfer (Step 2), apply (Step 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TransferError
from repro.preferences import (
    FeatureCatalog,
    LOCAL_ROADS,
    MAJOR_ROADS,
    PreferenceLearner,
    PreferenceTransfer,
    PreferenceVector,
    TransferConfig,
    conjugate_gradient,
    evaluate_transfer_accuracy,
    jacobi,
    learn_t_edge_preferences,
    materialize_b_edge_paths,
    solve,
    transfer_to_b_edges,
)
from repro.regions.region_graph import RegionEdge
from repro.routing import CostFeature, fastest_path, preference_dijkstra, shortest_path
from repro.routing.path import Path


class TestPreferenceLearner:
    def test_learns_distance_preference_from_shortest_paths(self, grid_network):
        learner = PreferenceLearner(grid_network)
        paths = [shortest_path(grid_network, 0, 27), shortest_path(grid_network, 3, 56)]
        learned = learner.learn(paths)
        assert learned.preference.master is CostFeature.DISTANCE

    def test_learns_travel_time_preference_from_fastest_paths(self, grid_network):
        learner = PreferenceLearner(grid_network)
        paths = [fastest_path(grid_network, 0, 99), fastest_path(grid_network, 9, 90)]
        learned = learner.learn(paths)
        assert learned.preference.master is CostFeature.TRAVEL_TIME

    def test_learns_slave_road_preference(self, grid_network):
        # Ground-truth paths follow a distance-master preference restricted to
        # major roads; the learner should recover a major-road slave feature.
        preference = PreferenceVector(master=CostFeature.DISTANCE, slave=MAJOR_ROADS)
        paths = [
            preference_dijkstra(grid_network, 0, 99, preference),
            preference_dijkstra(grid_network, 5, 95, preference),
        ]
        learned = PreferenceLearner(grid_network).learn(paths)
        constructed = preference_dijkstra(grid_network, 0, 99, learned.preference)
        from repro.preferences import path_similarity

        assert path_similarity(grid_network, paths[0], constructed) >= 0.9

    def test_similarity_reported_high_for_consistent_paths(self, grid_network):
        paths = [shortest_path(grid_network, 1, 88)]
        learned = PreferenceLearner(grid_network).learn(paths)
        assert learned.similarity > 0.9

    def test_empty_path_set_defaults_to_fastest(self, grid_network):
        learned = PreferenceLearner(grid_network).learn([])
        assert learned.preference.master is CostFeature.TRAVEL_TIME
        assert learned.similarity == 0.0

    def test_per_path_preferences_counted(self, grid_network):
        paths = [shortest_path(grid_network, 0, 27), fastest_path(grid_network, 0, 99)]
        learned = PreferenceLearner(grid_network).learn(paths)
        assert len(learned.per_path_preferences) == 2
        assert learned.unique_preference_count >= 1

    def test_learn_t_edge_preferences_annotates_edges(self, tiny, tiny_region_graph):
        results = learn_t_edge_preferences(tiny.network, tiny_region_graph, max_paths_per_edge=3)
        assert results
        for edge in tiny_region_graph.t_edges():
            assert edge.preference is not None
            assert not edge.preference_transferred


class TestSolvers:
    def _spd_system(self, n: int = 8, seed: int = 1):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, n))
        matrix = a @ a.T + n * np.eye(n)
        rhs = rng.normal(size=n)
        return matrix, rhs

    def test_cg_matches_direct(self):
        matrix, rhs = self._spd_system()
        expected = np.linalg.solve(matrix, rhs)
        result = conjugate_gradient(matrix, rhs)
        assert result.converged
        np.testing.assert_allclose(result.x, expected, rtol=1e-6, atol=1e-8)

    def test_jacobi_matches_direct_on_diagonally_dominant(self):
        matrix = np.array([[4.0, 1.0, 0.0], [1.0, 5.0, 1.0], [0.0, 1.0, 3.0]])
        rhs = np.array([1.0, 2.0, 3.0])
        expected = np.linalg.solve(matrix, rhs)
        result = jacobi(matrix, rhs)
        np.testing.assert_allclose(result.x, expected, rtol=1e-5, atol=1e-6)

    def test_jacobi_zero_diagonal_rejected(self):
        with pytest.raises(ValueError):
            jacobi(np.array([[0.0, 1.0], [1.0, 1.0]]), np.array([1.0, 1.0]))

    def test_solve_dispatch(self):
        matrix, rhs = self._spd_system(5, seed=2)
        for method in ("cg", "jacobi", "direct"):
            result = solve(matrix, rhs, method=method)
            assert result.x.shape == rhs.shape
        with pytest.raises(ValueError):
            solve(matrix, rhs, method="lu")

    def test_cg_on_trivial_zero_rhs(self):
        matrix = np.eye(3)
        result = conjugate_gradient(matrix, np.zeros(3))
        assert result.converged
        np.testing.assert_allclose(result.x, np.zeros(3))


def _region_edge(distance_m: float, types: frozenset, kind: str = "T") -> RegionEdge:
    return RegionEdge(region_a=0, region_b=1, kind=kind, centroid_distance_m=distance_m, functionality=types)


class TestTransfer:
    def _catalog(self):
        return FeatureCatalog()

    def test_transfer_copies_to_identical_edge(self):
        from repro.network import RoadType

        functionality = frozenset({(RoadType.PRIMARY, RoadType.RESIDENTIAL)})
        t_edge = _region_edge(1_000.0, functionality, "T")
        b_edge = _region_edge(1_050.0, functionality, "B")
        known = PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=MAJOR_ROADS)
        transfer = PreferenceTransfer(config=TransferConfig(amr=0.7))
        result = transfer.transfer([t_edge, b_edge], [known, None])
        assert result.preferences[1] is not None
        assert result.preferences[1].master is CostFeature.TRAVEL_TIME
        assert result.null_rate == 0.0

    def test_dissimilar_b_edge_gets_null(self):
        from repro.network import RoadType

        t_edge = _region_edge(500.0, frozenset({(RoadType.PRIMARY, RoadType.PRIMARY)}), "T")
        b_edge = _region_edge(50_000.0, frozenset({(RoadType.RESIDENTIAL, RoadType.RESIDENTIAL)}), "B")
        known = PreferenceVector(master=CostFeature.DISTANCE, slave=LOCAL_ROADS)
        result = PreferenceTransfer(config=TransferConfig(amr=0.9)).transfer(
            [t_edge, b_edge], [known, None]
        )
        assert result.preferences[1] is None
        assert result.null_rate == 1.0

    def test_needs_at_least_one_label(self):
        b_edge = _region_edge(100.0, frozenset(), "B")
        with pytest.raises(TransferError):
            PreferenceTransfer().transfer([b_edge], [None])

    def test_misaligned_inputs_rejected(self):
        t_edge = _region_edge(100.0, frozenset(), "T")
        with pytest.raises(TransferError):
            PreferenceTransfer().transfer([t_edge], [])

    def test_empty_input(self):
        result = PreferenceTransfer().transfer([], [])
        assert result.preferences == []

    def test_t_edges_keep_their_preferences(self):
        from repro.network import RoadType

        functionality = frozenset({(RoadType.PRIMARY, RoadType.PRIMARY)})
        t1 = _region_edge(1_000.0, functionality, "T")
        t2 = _region_edge(1_100.0, functionality, "T")
        known1 = PreferenceVector(master=CostFeature.DISTANCE)
        known2 = PreferenceVector(master=CostFeature.TRAVEL_TIME)
        result = PreferenceTransfer().transfer([t1, t2], [known1, known2])
        assert result.preferences[0] == known1
        assert result.preferences[1] == known2

    def test_amr_controls_adjacency_density(self):
        from repro.network import RoadType

        functionality = frozenset({(RoadType.PRIMARY, RoadType.PRIMARY)})
        edges = [_region_edge(1_000.0 + 300.0 * i, functionality, "T") for i in range(6)]
        labels = [PreferenceVector(master=CostFeature.DISTANCE)] * 6
        loose = PreferenceTransfer(config=TransferConfig(amr=0.5)).transfer(edges, labels)
        strict = PreferenceTransfer(config=TransferConfig(amr=1.9)).transfer(edges, labels)
        assert loose.adjacency_density >= strict.adjacency_density

    def test_transfer_to_region_graph_b_edges(self, tiny, fitted_l2r):
        region_graph = fitted_l2r.region_graph
        b_edges = region_graph.b_edges()
        if not b_edges:
            pytest.skip("tiny scenario produced no B-edges")
        transferred = [e for e in b_edges if e.preference is not None]
        # Each transferred B-edge must be flagged as transferred.
        assert all(e.preference_transferred for e in transferred)

    def test_evaluate_transfer_accuracy_perfect(self):
        prefs = [PreferenceVector(master=CostFeature.DISTANCE, slave=MAJOR_ROADS)] * 3
        assert evaluate_transfer_accuracy([None] * 3, prefs, prefs) == pytest.approx(1.0)

    def test_evaluate_transfer_accuracy_empty(self):
        assert evaluate_transfer_accuracy([], [], []) == 0.0


class TestApply:
    def test_materialize_attaches_paths(self, tiny, fitted_l2r):
        region_graph = fitted_l2r.region_graph
        b_edges = region_graph.b_edges()
        if not b_edges:
            pytest.skip("tiny scenario produced no B-edges")
        with_paths = [e for e in b_edges if e.most_popular_path() is not None]
        assert with_paths, "at least some B-edges must receive materialized paths"
        for edge in with_paths[:10]:
            path = edge.most_popular_path()
            assert path.is_valid(tiny.network)

    def test_materialize_is_idempotent_in_count_shape(self, tiny, tiny_region_graph):
        learn_kwargs = dict(max_paths_per_edge=2)
        learn_t_edge_preferences(tiny.network, tiny_region_graph, **learn_kwargs)
        if tiny_region_graph.b_edges():
            transfer_to_b_edges(tiny_region_graph)
        first = materialize_b_edge_paths(tiny.network, tiny_region_graph)
        second = materialize_b_edge_paths(tiny.network, tiny_region_graph)
        assert second <= first or first == 0
