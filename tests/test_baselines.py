"""Tests for the baseline routing algorithms and the external-service simulator."""

from __future__ import annotations

import pytest

from repro.baselines import (
    DomBaseline,
    ExternalRoutingService,
    ExternalServiceConfig,
    FastestBaseline,
    L2RAlgorithm,
    PopularRouteBaseline,
    ShortestBaseline,
    TripBaseline,
    waypoint_accuracy,
)
from repro.routing import CostFeature, fastest_path, shortest_path


class TestCostCentricBaselines:
    def test_shortest_matches_dijkstra(self, tiny, tiny_split):
        baseline = ShortestBaseline(tiny.network)
        trajectory = tiny_split.test[0]
        expected = shortest_path(tiny.network, trajectory.source, trajectory.destination)
        assert baseline.route(trajectory.source, trajectory.destination).vertices == expected.vertices

    def test_fastest_matches_dijkstra(self, tiny, tiny_split):
        baseline = FastestBaseline(tiny.network)
        trajectory = tiny_split.test[0]
        expected = fastest_path(tiny.network, trajectory.source, trajectory.destination)
        assert baseline.route(trajectory.source, trajectory.destination).vertices == expected.vertices

    def test_names(self, tiny):
        assert ShortestBaseline(tiny.network).name == "Shortest"
        assert FastestBaseline(tiny.network).name == "Fastest"


class TestDom:
    @pytest.fixture(scope="class")
    def dom(self, tiny, tiny_split):
        return DomBaseline(tiny.network, tiny_split.train, max_trajectories_per_driver=5)

    def test_learns_weights_per_driver(self, dom, tiny_split):
        driver_ids = {t.driver_id for t in tiny_split.train}
        for driver_id in list(driver_ids)[:5]:
            weights = dom.driver_weights(driver_id)
            assert set(weights) == {CostFeature.DISTANCE, CostFeature.TRAVEL_TIME, CostFeature.FUEL}
            assert sum(weights.values()) == pytest.approx(1.0, abs=1e-6)

    def test_unknown_driver_gets_uniform_weights(self, dom):
        weights = dom.driver_weights(10_000)
        assert all(w == pytest.approx(1 / 3) for w in weights.values())

    def test_routes_are_valid(self, dom, tiny, tiny_split):
        for trajectory in tiny_split.test[:10]:
            path = dom.route(
                trajectory.source, trajectory.destination, driver_id=trajectory.driver_id
            )
            assert path.is_valid(tiny.network)
            assert path.source == trajectory.source
            assert path.destination == trajectory.destination


class TestTrip:
    @pytest.fixture(scope="class")
    def trip(self, tiny, tiny_split):
        return TripBaseline(tiny.network, tiny_split.train)

    def test_ratios_bounded(self, trip, tiny_split):
        for trajectory in tiny_split.train[:10]:
            ratios = trip.driver_ratios(trajectory.driver_id)
            assert all(0.25 <= r <= 4.0 for r in ratios.values())

    def test_unknown_driver_ratio_is_one(self, trip):
        assert all(r == 1.0 for r in trip.driver_ratios(None).values())

    def test_routes_are_valid(self, trip, tiny, tiny_split):
        for trajectory in tiny_split.test[:10]:
            path = trip.route(
                trajectory.source, trajectory.destination, driver_id=trajectory.driver_id
            )
            assert path.is_valid(tiny.network)

    def test_unknown_driver_route_equals_fastest(self, trip, tiny, tiny_split):
        trajectory = tiny_split.test[0]
        expected = fastest_path(tiny.network, trajectory.source, trajectory.destination)
        path = trip.route(trajectory.source, trajectory.destination, driver_id=None)
        assert path.travel_time_s(tiny.network) == pytest.approx(
            expected.travel_time_s(tiny.network), rel=1e-9
        )


class TestPopular:
    @pytest.fixture(scope="class")
    def popular(self, tiny, tiny_split):
        return PopularRouteBaseline(tiny.network, tiny_split.train)

    def test_exact_od_lookup_returns_training_path(self, popular, tiny_split):
        trajectory = tiny_split.train[0]
        path = popular.route(trajectory.source, trajectory.destination)
        assert path.source == trajectory.source
        assert path.destination == trajectory.destination

    def test_unseen_pair_spliced_and_valid(self, popular, tiny, tiny_split):
        trajectory = tiny_split.test[0]
        path = popular.route(trajectory.source, trajectory.destination)
        assert path.is_valid(tiny.network)

    def test_fallback_rate_tracked(self, popular, tiny_split):
        for trajectory in tiny_split.test[:10]:
            popular.route(trajectory.source, trajectory.destination)
        assert 0.0 <= popular.fallback_rate <= 1.0


class TestL2RAdapter:
    def test_adapter_delegates(self, fitted_l2r, tiny_split):
        adapter = L2RAlgorithm(fitted_l2r)
        trajectory = tiny_split.test[0]
        direct = fitted_l2r.route(trajectory.source, trajectory.destination)
        via_adapter = adapter.route(trajectory.source, trajectory.destination)
        assert via_adapter.vertices == direct.vertices
        assert adapter.name == "L2R"


class TestExternalService:
    @pytest.fixture(scope="class")
    def service(self, tiny):
        return ExternalRoutingService(tiny.network)

    def test_route_valid(self, service, tiny, tiny_split):
        trajectory = tiny_split.test[0]
        path = service.route(trajectory.source, trajectory.destination)
        assert path.is_valid(tiny.network)

    def test_directions_returns_waypoints(self, service, tiny, tiny_split):
        trajectory = tiny_split.test[0]
        waypoints = service.directions(trajectory.source, trajectory.destination)
        assert len(waypoints) >= 2
        assert all(len(point) == 2 for point in waypoints)

    def test_directions_deterministic(self, service, tiny_split):
        trajectory = tiny_split.test[0]
        a = service.directions(trajectory.source, trajectory.destination)
        b = service.directions(trajectory.source, trajectory.destination)
        assert a == b

    def test_waypoint_accuracy_perfect_for_own_path(self, service, tiny, tiny_split):
        trajectory = tiny_split.test[0]
        config = ExternalServiceConfig(waypoint_jitter_m=0.0, waypoint_stride=1)
        exact_service = ExternalRoutingService(tiny.network, config)
        path = exact_service.route(trajectory.source, trajectory.destination)
        waypoints = exact_service.directions(trajectory.source, trajectory.destination)
        assert waypoint_accuracy(tiny.network, path, waypoints) > 0.95

    def test_waypoint_accuracy_zero_for_far_waypoints(self, tiny, tiny_split):
        trajectory = tiny_split.test[0]
        accuracy = waypoint_accuracy(tiny.network, trajectory.path, [(0.0, 0.0), (1.0, 1.0)])
        assert accuracy == 0.0

    def test_service_prefers_major_roads(self, tiny):
        """The simulated service's major-road bias shows up in its routes."""
        config = ExternalServiceConfig(major_road_bias=0.5, speed_perturbation=0.0)
        biased = ExternalRoutingService(tiny.network, config)
        config_neutral = ExternalServiceConfig(major_road_bias=1.0, speed_perturbation=0.0)
        neutral = ExternalRoutingService(tiny.network, config_neutral)

        def major_share(path):
            edges = tiny.network.path_edges(path.vertices)
            if not edges:
                return 0.0
            return sum(1 for e in edges if e.road_type.is_major) / len(edges)

        vertices = list(tiny.network.vertex_ids())
        pairs = [(vertices[0], vertices[-1]), (vertices[3], vertices[-5])]
        biased_share = sum(major_share(biased.route(s, d)) for s, d in pairs)
        neutral_share = sum(major_share(neutral.route(s, d)) for s, d in pairs)
        assert biased_share >= neutral_share
