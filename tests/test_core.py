"""Tests for the L2R pipeline, the region-graph router, and the configuration."""

from __future__ import annotations

import pytest

from repro.core import L2RConfig, LearnToRoute, PeakHours, RegionRouter
from repro.exceptions import ConfigurationError, NotFittedError
from repro.preferences import TransferConfig, path_similarity
from repro.routing import fastest_path


class TestConfig:
    def test_defaults_valid(self):
        config = L2RConfig()
        assert config.transfer.amr == pytest.approx(0.7)
        assert config.enforce_road_types

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            L2RConfig(functionality_top_k=0)
        with pytest.raises(ConfigurationError):
            L2RConfig(max_paths_per_t_edge=0)
        with pytest.raises(ConfigurationError):
            L2RConfig(max_region_hops=0)
        with pytest.raises(ConfigurationError):
            L2RConfig(transfer=TransferConfig(amr=3.0))

    def test_peak_hours(self):
        peak = PeakHours()
        assert peak.is_peak(8 * 3600.0)
        assert peak.is_peak(17 * 3600.0)
        assert not peak.is_peak(12 * 3600.0)
        assert not peak.is_peak(2 * 3600.0)

    def test_peak_hours_wrap_midnight(self):
        peak = PeakHours()
        assert peak.is_peak(8 * 3600.0 + 86_400.0)


class TestLearnToRoute:
    def test_unfitted_raises(self, tiny):
        pipeline = LearnToRoute()
        with pytest.raises(NotFittedError):
            pipeline.route(0, 1)
        with pytest.raises(NotFittedError):
            _ = pipeline.region_graph
        with pytest.raises(NotFittedError):
            _ = pipeline.network

    def test_fit_produces_connected_region_graph(self, fitted_l2r):
        assert fitted_l2r.is_fitted
        assert fitted_l2r.region_graph.is_connected()
        assert fitted_l2r.region_graph.region_count > 1

    def test_t_edges_have_learned_preferences(self, fitted_l2r):
        for edge in fitted_l2r.region_graph.t_edges():
            assert edge.preference is not None

    def test_offline_timings_recorded(self, fitted_l2r):
        timings = fitted_l2r.offline_timings
        assert timings.region_graph_s >= 0.0
        assert timings.total_s > 0.0

    def test_routes_are_valid_paths(self, tiny, tiny_split, fitted_l2r):
        for trajectory in tiny_split.test[:20]:
            path = fitted_l2r.route(trajectory.source, trajectory.destination)
            assert path.source == trajectory.source
            assert path.destination == trajectory.destination
            assert path.is_valid(tiny.network)

    def test_route_same_vertex(self, fitted_l2r, tiny_split):
        vertex = tiny_split.test[0].source
        assert fitted_l2r.route(vertex, vertex).is_trivial

    def test_diagnostics_reported(self, fitted_l2r, tiny_split):
        trajectory = tiny_split.test[0]
        path, diagnostics = fitted_l2r.route_with_diagnostics(
            trajectory.source, trajectory.destination
        )
        assert diagnostics.case in {
            "in-region-same",
            "in-region",
            "in-out-region",
            "out-region",
            "fallback-fastest",
        }
        assert path.source == trajectory.source

    def test_l2r_competitive_with_cost_centric_baselines(self, tiny, tiny_split, fitted_l2r):
        """L2R tracks driver paths at least as well as the weaker cost-centric
        baseline and stays within a small margin of the better one (the tiny
        grid scenario is close to the degenerate regime where many equal-cost
        alternatives exist; the full benchmark scenarios carry the paper-style
        comparison)."""
        from repro.routing import fastest_path, shortest_path

        l2r_total, shortest_total, fastest_total, count = 0.0, 0.0, 0.0, 0
        for trajectory in tiny_split.test[:40]:
            try:
                l2r_path = fitted_l2r.route(trajectory.source, trajectory.destination)
                short = shortest_path(tiny.network, trajectory.source, trajectory.destination)
                fast = fastest_path(tiny.network, trajectory.source, trajectory.destination)
            except Exception:
                continue
            l2r_total += path_similarity(tiny.network, trajectory.path, l2r_path)
            shortest_total += path_similarity(tiny.network, trajectory.path, short)
            fastest_total += path_similarity(tiny.network, trajectory.path, fast)
            count += 1
        assert count > 10
        assert l2r_total >= min(shortest_total, fastest_total) * 0.95
        assert l2r_total >= max(shortest_total, fastest_total) * 0.85

    def test_time_dependent_fit_builds_two_models(self, tiny, tiny_split):
        pipeline = LearnToRoute(L2RConfig(time_dependent=True)).fit(tiny.network, tiny_split.train)
        assert pipeline.is_fitted
        trajectory = tiny_split.test[0]
        peak_path = pipeline.route(trajectory.source, trajectory.destination, departure_time=8 * 3600.0)
        off_path = pipeline.route(trajectory.source, trajectory.destination, departure_time=12 * 3600.0)
        assert peak_path.is_valid(tiny.network)
        assert off_path.is_valid(tiny.network)

    def test_region_of_passthrough(self, fitted_l2r, tiny_split):
        source = tiny_split.train[0].source
        assert fitted_l2r.region_of(source) == fitted_l2r.region_graph.region_of(source)


class TestRegionRouter:
    def test_router_handles_out_of_region_endpoints(self, tiny, fitted_l2r):
        region_graph = fitted_l2r.region_graph
        uncovered = [
            v for v in tiny.network.vertex_ids() if region_graph.region_of(v) is None
        ]
        covered = [v for v in tiny.network.vertex_ids() if region_graph.region_of(v) is not None]
        if not uncovered:
            pytest.skip("all vertices covered in this scenario")
        router = RegionRouter(region_graph)
        path, diagnostics = router.route_with_diagnostics(uncovered[0], covered[0])
        assert path.is_valid(tiny.network)
        assert diagnostics.case in {"in-out-region", "out-region", "fallback-fastest"}

    def test_router_path_endpoints_always_match_request(self, tiny, fitted_l2r, tiny_split):
        router = RegionRouter(fitted_l2r.region_graph)
        for trajectory in tiny_split.test[:30]:
            path = router.route(trajectory.source, trajectory.destination)
            assert path.source == trajectory.source
            assert path.destination == trajectory.destination

    def test_router_output_has_no_repeated_vertices(self, tiny, fitted_l2r, tiny_split):
        router = RegionRouter(fitted_l2r.region_graph)
        for trajectory in tiny_split.test[:30]:
            path = router.route(trajectory.source, trajectory.destination)
            assert len(set(path.vertices)) == len(path.vertices)

    def test_router_not_wildly_longer_than_fastest(self, tiny, fitted_l2r, tiny_split):
        router = RegionRouter(fitted_l2r.region_graph)
        for trajectory in tiny_split.test[:20]:
            path = router.route(trajectory.source, trajectory.destination)
            reference = fastest_path(tiny.network, trajectory.source, trajectory.destination)
            assert path.distance_m(tiny.network) <= 4.0 * max(
                reference.distance_m(tiny.network), 1.0
            )
