"""Tests for the L2R pipeline, the region-graph router, and the configuration."""

from __future__ import annotations

import pytest

from repro.core import L2RConfig, LearnToRoute, PeakHours, RegionRouter
from repro.core.router import _remove_cycles
from repro.exceptions import ConfigurationError, NotFittedError
from repro.network import RoadNetwork, RoadType
from repro.preferences import TransferConfig, path_similarity
from repro.regions.region import Region
from repro.regions.region_graph import RegionGraph
from repro.routing import Path, fastest_path


class TestConfig:
    def test_defaults_valid(self):
        config = L2RConfig()
        assert config.transfer.amr == pytest.approx(0.7)
        assert config.enforce_road_types

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            L2RConfig(functionality_top_k=0)
        with pytest.raises(ConfigurationError):
            L2RConfig(max_paths_per_t_edge=0)
        with pytest.raises(ConfigurationError):
            L2RConfig(max_region_hops=0)
        with pytest.raises(ConfigurationError):
            L2RConfig(transfer=TransferConfig(amr=3.0))

    def test_peak_hours(self):
        peak = PeakHours()
        assert peak.is_peak(8 * 3600.0)
        assert peak.is_peak(17 * 3600.0)
        assert not peak.is_peak(12 * 3600.0)
        assert not peak.is_peak(2 * 3600.0)

    def test_peak_hours_wrap_midnight(self):
        peak = PeakHours()
        assert peak.is_peak(8 * 3600.0 + 86_400.0)

    def test_peak_hours_rejects_inverted_windows(self):
        with pytest.raises(ConfigurationError):
            PeakHours(morning_start_s=9 * 3600.0, morning_end_s=7 * 3600.0)
        with pytest.raises(ConfigurationError):
            PeakHours(evening_start_s=18 * 3600.0, evening_end_s=16 * 3600.0)

    def test_peak_hours_rejects_values_outside_a_day(self):
        with pytest.raises(ConfigurationError):
            PeakHours(morning_start_s=-1.0)
        with pytest.raises(ConfigurationError):
            PeakHours(evening_end_s=90_000.0)


class TestLearnToRoute:
    def test_unfitted_raises(self, tiny):
        pipeline = LearnToRoute()
        with pytest.raises(NotFittedError):
            pipeline.route(0, 1)
        with pytest.raises(NotFittedError):
            _ = pipeline.region_graph
        with pytest.raises(NotFittedError):
            _ = pipeline.network

    def test_fit_produces_connected_region_graph(self, fitted_l2r):
        assert fitted_l2r.is_fitted
        assert fitted_l2r.region_graph.is_connected()
        assert fitted_l2r.region_graph.region_count > 1

    def test_t_edges_have_learned_preferences(self, fitted_l2r):
        for edge in fitted_l2r.region_graph.t_edges():
            assert edge.preference is not None

    def test_offline_timings_recorded(self, fitted_l2r):
        timings = fitted_l2r.offline_timings
        assert timings.region_graph_s >= 0.0
        assert timings.total_s > 0.0

    def test_routes_are_valid_paths(self, tiny, tiny_split, fitted_l2r):
        for trajectory in tiny_split.test[:20]:
            path = fitted_l2r.route(trajectory.source, trajectory.destination)
            assert path.source == trajectory.source
            assert path.destination == trajectory.destination
            assert path.is_valid(tiny.network)

    def test_route_same_vertex(self, fitted_l2r, tiny_split):
        vertex = tiny_split.test[0].source
        assert fitted_l2r.route(vertex, vertex).is_trivial

    def test_diagnostics_reported(self, fitted_l2r, tiny_split):
        trajectory = tiny_split.test[0]
        path, diagnostics = fitted_l2r.route_with_diagnostics(
            trajectory.source, trajectory.destination
        )
        assert diagnostics.case in {
            "in-region-same",
            "in-region",
            "in-out-region",
            "out-region",
            "fallback-fastest",
        }
        assert path.source == trajectory.source

    def test_l2r_competitive_with_cost_centric_baselines(self, tiny, tiny_split, fitted_l2r):
        """L2R tracks driver paths at least as well as the weaker cost-centric
        baseline and stays within a small margin of the better one (the tiny
        grid scenario is close to the degenerate regime where many equal-cost
        alternatives exist; the full benchmark scenarios carry the paper-style
        comparison)."""
        from repro.routing import fastest_path, shortest_path

        l2r_total, shortest_total, fastest_total, count = 0.0, 0.0, 0.0, 0
        for trajectory in tiny_split.test[:40]:
            try:
                l2r_path = fitted_l2r.route(trajectory.source, trajectory.destination)
                short = shortest_path(tiny.network, trajectory.source, trajectory.destination)
                fast = fastest_path(tiny.network, trajectory.source, trajectory.destination)
            except Exception:
                continue
            l2r_total += path_similarity(tiny.network, trajectory.path, l2r_path)
            shortest_total += path_similarity(tiny.network, trajectory.path, short)
            fastest_total += path_similarity(tiny.network, trajectory.path, fast)
            count += 1
        assert count > 10
        assert l2r_total >= min(shortest_total, fastest_total) * 0.95
        assert l2r_total >= max(shortest_total, fastest_total) * 0.85

    def test_time_dependent_fit_builds_two_models(self, tiny, tiny_split):
        pipeline = LearnToRoute(L2RConfig(time_dependent=True)).fit(tiny.network, tiny_split.train)
        assert pipeline.is_fitted
        trajectory = tiny_split.test[0]
        peak_path = pipeline.route(trajectory.source, trajectory.destination, departure_time=8 * 3600.0)
        off_path = pipeline.route(trajectory.source, trajectory.destination, departure_time=12 * 3600.0)
        assert peak_path.is_valid(tiny.network)
        assert off_path.is_valid(tiny.network)

    def test_region_of_passthrough(self, fitted_l2r, tiny_split):
        source = tiny_split.train[0].source
        assert fitted_l2r.region_of(source) == fitted_l2r.region_graph.region_of(source)


class TestRegionRouter:
    def test_router_handles_out_of_region_endpoints(self, tiny, fitted_l2r):
        region_graph = fitted_l2r.region_graph
        uncovered = [
            v for v in tiny.network.vertex_ids() if region_graph.region_of(v) is None
        ]
        covered = [v for v in tiny.network.vertex_ids() if region_graph.region_of(v) is not None]
        if not uncovered:
            pytest.skip("all vertices covered in this scenario")
        router = RegionRouter(region_graph)
        path, diagnostics = router.route_with_diagnostics(uncovered[0], covered[0])
        assert path.is_valid(tiny.network)
        assert diagnostics.case in {"in-out-region", "out-region", "fallback-fastest"}

    def test_router_path_endpoints_always_match_request(self, tiny, fitted_l2r, tiny_split):
        router = RegionRouter(fitted_l2r.region_graph)
        for trajectory in tiny_split.test[:30]:
            path = router.route(trajectory.source, trajectory.destination)
            assert path.source == trajectory.source
            assert path.destination == trajectory.destination

    def test_router_output_has_no_repeated_vertices(self, tiny, fitted_l2r, tiny_split):
        router = RegionRouter(fitted_l2r.region_graph)
        for trajectory in tiny_split.test[:30]:
            path = router.route(trajectory.source, trajectory.destination)
            assert len(set(path.vertices)) == len(path.vertices)

    def test_router_not_wildly_longer_than_fastest(self, tiny, fitted_l2r, tiny_split):
        router = RegionRouter(fitted_l2r.region_graph)
        for trajectory in tiny_split.test[:20]:
            path = router.route(trajectory.source, trajectory.destination)
            reference = fastest_path(tiny.network, trajectory.source, trajectory.destination)
            assert path.distance_m(tiny.network) <= 4.0 * max(
                reference.distance_m(tiny.network), 1.0
            )


class TestRemoveCycles:
    def test_single_vertex_path_unchanged(self):
        path = Path.of([5])
        assert _remove_cycles(path).vertices == (5,)

    def test_acyclic_path_unchanged(self):
        path = Path.of([0, 1, 2, 3])
        assert _remove_cycles(path).vertices == (0, 1, 2, 3)

    def test_simple_loop_removed(self):
        path = Path.of([0, 1, 2, 1, 3])
        assert _remove_cycles(path).vertices == (0, 1, 3)

    def test_revisits_after_cut_are_kept(self):
        # Vertex 2 appears inside the removed loop and again later; the second
        # appearance is legitimate once the loop is gone.
        path = Path.of([0, 1, 2, 3, 1, 4, 2, 5])
        cleaned = _remove_cycles(path)
        assert cleaned.vertices == (0, 1, 4, 2, 5)
        assert len(set(cleaned.vertices)) == len(cleaned.vertices)

    def test_idempotent(self):
        path = Path.of([0, 1, 2, 1, 3, 4, 3, 5])
        once = _remove_cycles(path)
        assert _remove_cycles(once).vertices == once.vertices

    def test_endpoints_preserved(self):
        path = Path.of([7, 8, 9, 8, 10])
        cleaned = _remove_cycles(path)
        assert cleaned.source == 7
        assert cleaned.destination == 10


def _line_network(n: int = 5) -> RoadNetwork:
    """A plain residential line 0 - 1 - ... - (n-1), no shortcut."""
    network = RoadNetwork(name="case2-line")
    for i in range(n):
        network.add_vertex(i, lon=10.0 + i * 0.012, lat=56.0)
    for i in range(n - 1):
        network.add_edge(
            i, i + 1, road_type=RoadType.RESIDENTIAL, distance_m=1_000.0, bidirectional=True
        )
    return network


class TestCase2Stitching:
    def test_falls_back_when_candidate_regions_coincide(self):
        # The fastest path 1 -> 3 only touches the single region {2}: Case 2
        # cannot pick distinct source / destination regions and must return
        # the fastest path itself.
        network = _line_network()
        graph = RegionGraph(network, [Region(region_id=0, vertices=frozenset({2}))])
        router = RegionRouter(graph)
        path, diagnostics = router.route_with_diagnostics(1, 3)
        assert path.vertices == (1, 2, 3)
        assert diagnostics.case == "out-region"
        assert diagnostics.region_hops == 0

    def test_no_region_touched_returns_fastest(self):
        network = _line_network()
        graph = RegionGraph(network, [Region(region_id=0, vertices=frozenset({4}))])
        router = RegionRouter(graph)
        path, diagnostics = router.route_with_diagnostics(0, 2)
        assert path.vertices == (0, 1, 2)
        assert diagnostics.case == "out-region"

    def test_prefix_middle_suffix_stitching(self):
        # Endpoints 0 and 4 are uncovered; the fastest path crosses region
        # {1} first and region {3} last, so Case 2 stitches fastest prefix +
        # Case-1 middle + fastest suffix back into one valid path.
        network = _line_network()
        regions = [
            Region(region_id=0, vertices=frozenset({1})),
            Region(region_id=1, vertices=frozenset({3})),
        ]
        graph = RegionGraph(network, regions)
        graph.connect_with_bfs()  # B-edge between the two regions
        router = RegionRouter(graph)
        path, diagnostics = router.route_with_diagnostics(0, 4)
        assert path.source == 0
        assert path.destination == 4
        assert path.is_valid(network)
        assert len(set(path.vertices)) == len(path.vertices)
        assert diagnostics.case == "out-region"

    def test_one_covered_endpoint_reports_in_out_region(self):
        network = _line_network()
        graph = RegionGraph(network, [Region(region_id=0, vertices=frozenset({0, 1}))])
        router = RegionRouter(graph)
        path, diagnostics = router.route_with_diagnostics(1, 4)
        assert path.source == 1
        assert path.destination == 4
        assert diagnostics.case == "in-out-region"
