"""Exception hierarchy tests and an end-to-end integration test."""

from __future__ import annotations

import pytest

from repro import LearnToRoute, ReproError
from repro.exceptions import (
    ClusteringError,
    ConfigurationError,
    EdgeNotFoundError,
    MapMatchingError,
    NetworkError,
    NoPathError,
    NotFittedError,
    PreferenceError,
    RegionGraphError,
    TrajectoryError,
    TransferError,
    VertexNotFoundError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            NetworkError,
            NoPathError,
            TrajectoryError,
            MapMatchingError,
            ClusteringError,
            RegionGraphError,
            PreferenceError,
            TransferError,
            ConfigurationError,
            NotFittedError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_vertex_not_found_message(self):
        error = VertexNotFoundError(42)
        assert "42" in str(error)
        assert error.vertex_id == 42

    def test_edge_not_found_message(self):
        error = EdgeNotFoundError(1, 2)
        assert error.source == 1 and error.target == 2

    def test_no_path_reason(self):
        error = NoPathError(1, 2, reason="disconnected")
        assert "disconnected" in str(error)

    def test_map_matching_is_trajectory_error(self):
        assert issubclass(MapMatchingError, TrajectoryError)

    def test_transfer_is_preference_error(self):
        assert issubclass(TransferError, PreferenceError)


class TestEndToEndIntegration:
    """The full pipeline on freshly generated data, exercised in one pass."""

    def test_generate_fit_route_evaluate(self):
        from repro.baselines import FastestBaseline, L2RAlgorithm, ShortestBaseline
        from repro.datasets.splits import split_by_time
        from repro.evaluation import EvaluationHarness
        from repro.network import grid_city_network
        from repro.trajectories import GeneratorConfig, TrajectoryGenerator
        from repro.trajectories.statistics import D2_DISTANCE_BANDS_KM

        network = grid_city_network(rows=8, cols=8, block_m=350.0, seed=21)
        config = GeneratorConfig(n_drivers=8, n_trajectories=70, hotspot_count=3, seed=21)
        data = TrajectoryGenerator(network, config).generate()
        split = split_by_time(data.trajectories, train_fraction=0.7)

        pipeline = LearnToRoute().fit(network, split.train)
        assert pipeline.region_graph.is_connected()

        harness = EvaluationHarness(
            network=network,
            region_graph=pipeline.region_graph,
            bands_km=D2_DISTANCE_BANDS_KM,
        )
        harness.add_algorithm(L2RAlgorithm(pipeline))
        harness.add_algorithm(ShortestBaseline(network))
        harness.add_algorithm(FastestBaseline(network))
        report = harness.evaluate(split.test, max_queries=15)

        assert set(report.algorithms()) == {"L2R", "Shortest", "Fastest"}
        for algorithm in report.algorithms():
            assert 0.0 <= report.mean_accuracy(algorithm) <= 100.0
        # Every L2R answer starts and ends at the requested vertices.
        for result in report.results:
            assert not result.failed or result.algorithm != "L2R"

    def test_unfitted_pipeline_raises_repro_error(self):
        with pytest.raises(ReproError):
            LearnToRoute().route(0, 1)
