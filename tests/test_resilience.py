"""The resilience layer: deadline budgets, retries, breakers, admission,
the traffic drain, fault injection, and the service-level chaos properties.

The chaos tests are **deterministic**: every random fault decision comes
from a seeded ``FaultInjector`` schedule (or an explicit script), so a fixed
seed produces the same breaker trips, sheds, and degraded counts on every
run — the determinism tests assert exactly that by running twice.

Properties under chaos:

* no deadlock — every call completes (joins use timeouts, and the suite
  itself would hang otherwise);
* every successful response is either computed at the current cost version
  or explicitly flagged ``degraded=True`` (checked with
  ``repro.analysis.sanitize(strict=True)`` on the non-degraded path);
* breaker state transitions match the scripted failure pattern;
* ``RoutingService.close()`` mid-batch neither deadlocks nor crashes the
  batch.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis import sanitize
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    NoPathError,
    ServiceOverloadedError,
    TransientEngineError,
)
from repro.network import small_demo_network
from repro.routing import fastest_path
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    CircuitBreakerConfig,
    DeadlineBudget,
    FaultInjector,
    FunctionEngine,
    RetryPolicy,
    RouteRequest,
    RoutingService,
)
from repro.service.resilience import is_transient_failure, sleep_within
from repro.traffic import TrafficDrain, TrafficFeed, TrafficUpdate


@pytest.fixture()
def network():
    return small_demo_network(seed=3)


def _engine(network, name="engine"):
    return FunctionEngine(network, lambda s, d: fastest_path(network, s, d), name=name)


def _no_path_engine(network, name="nopath"):
    def fail(source, destination):
        raise NoPathError(source, destination)

    return FunctionEngine(network, fail, name=name)


# ---------------------------------------------------------------------- #
# DeadlineBudget
# ---------------------------------------------------------------------- #
class TestDeadlineBudget:
    def test_consumes_with_injected_clock(self):
        now = [0.0]
        budget = DeadlineBudget(1.0, clock=lambda: now[0])
        assert budget.remaining() == 1.0 and not budget.expired
        now[0] = 0.6
        assert budget.remaining() == pytest.approx(0.4)
        now[0] = 1.2
        assert budget.expired and budget.remaining() == 0.0
        with pytest.raises(DeadlineExceededError) as excinfo:
            budget.check(stage="unit")
        assert excinfo.value.budget_s == 1.0
        assert excinfo.value.elapsed_s == pytest.approx(1.2)

    def test_start_none_means_no_deadline(self):
        assert DeadlineBudget.start(None) is None
        assert DeadlineBudget.start(0.5).budget_s == 0.5

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            DeadlineBudget(0.0)

    def test_sleep_within_skips_oversized_backoff(self):
        now = [0.0]
        budget = DeadlineBudget(0.010, clock=lambda: now[0])
        slept: list[float] = []
        assert sleep_within(0.005, budget, sleep=slept.append)
        assert slept == [0.005]
        now[0] = 0.008  # 2ms left: a 5ms backoff must be skipped
        assert not sleep_within(0.005, budget, sleep=slept.append)
        assert slept == [0.005]


# ---------------------------------------------------------------------- #
# RetryPolicy
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_same_seed_same_backoff_schedule(self):
        a = RetryPolicy(max_retries=3, base_delay_s=0.01, seed=11)
        b = RetryPolicy(max_retries=3, base_delay_s=0.01, seed=11)
        assert [a.delay(i) for i in range(3)] == [b.delay(i) for i in range(3)]

    def test_stops_after_max_retries(self):
        policy = RetryPolicy(max_retries=1)
        assert policy.delay(0) is not None
        assert policy.delay(1) is None

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_retries=3, base_delay_s=0.01, multiplier=2.0, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(1) == pytest.approx(0.02)
        assert policy.delay(2) == pytest.approx(0.04)

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientEngineError("boom"))
        assert policy.is_retryable("TransientEngineError: boom")
        assert policy.is_retryable("CircuitOpenError: engine 'x' breaker open")
        assert not policy.is_retryable(NoPathError(0, 1))
        assert not policy.is_retryable("NoPathError: no path")
        assert not policy.is_retryable(None)

    def test_transient_failure_classification(self):
        assert is_transient_failure(TransientEngineError("x"))
        assert is_transient_failure(DeadlineExceededError(1.0, 2.0))
        assert is_transient_failure("DeadlineExceededError: over budget")
        assert not is_transient_failure("NoPathError: nope")
        assert not is_transient_failure(None)


# ---------------------------------------------------------------------- #
# CircuitBreaker
# ---------------------------------------------------------------------- #
class TestCircuitBreaker:
    def _breaker(self, **overrides):
        config = CircuitBreakerConfig(
            window=8,
            failure_threshold=0.5,
            min_samples=2,
            recovery_s=10.0,
            **overrides,
        )
        now = [0.0]
        return CircuitBreaker(config, clock=lambda: now[0]), now

    def test_trips_open_after_failure_rate(self):
        breaker, _ = self._breaker()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"  # min_samples guard
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 1
        assert not breaker.allow()

    def test_successes_keep_it_closed(self):
        breaker, _ = self._breaker()
        for _ in range(10):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker, now = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 11.0  # past recovery_s
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # probes are bounded (half_open_probes=1)
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()
        assert breaker.trips == 1

    def test_half_open_probe_failure_reopens(self):
        breaker, now = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 2
        assert not breaker.allow()

    def test_open_error_is_transient(self):
        breaker, _ = self._breaker()
        error = breaker.open_error("primary")
        assert isinstance(error, CircuitOpenError)
        assert is_transient_failure(error)


# ---------------------------------------------------------------------- #
# AdmissionController
# ---------------------------------------------------------------------- #
class TestAdmissionController:
    def test_sheds_beyond_limit(self):
        controller = AdmissionController(max_in_flight=2)
        controller.acquire()
        controller.acquire()
        with pytest.raises(ServiceOverloadedError):
            controller.acquire()
        assert controller.shed == 1 and controller.in_flight == 2
        controller.release()
        controller.acquire()  # a freed slot admits again
        assert controller.admitted == 3

    def test_context_manager_releases_on_error(self):
        controller = AdmissionController(max_in_flight=1)
        with pytest.raises(RuntimeError):
            with controller.admit():
                assert controller.in_flight == 1
                raise RuntimeError("boom")
        assert controller.in_flight == 0

    def test_bounded_wait_for_a_slot(self):
        controller = AdmissionController(max_in_flight=1, max_wait_s=2.0)
        controller.acquire()
        releaser = threading.Timer(0.05, controller.release)
        releaser.start()
        try:
            controller.acquire()  # waits (bounded) until the timer fires
        finally:
            releaser.join(timeout=5.0)
        assert controller.shed == 0


# ---------------------------------------------------------------------- #
# FaultInjector
# ---------------------------------------------------------------------- #
class TestFaultInjector:
    def _schedule(self, seed, calls=40):
        injector = FaultInjector(seed=seed)
        network = small_demo_network(seed=3)
        faulty = injector.engine(_engine(network), error_rate=0.3, spike_rate=0.2, spike_s=0.0)
        for _ in range(calls):
            try:
                faulty.route(RouteRequest(0, 20))
            except TransientEngineError:
                pass
        return list(faulty.counters.actions)

    def test_same_seed_same_schedule(self):
        assert self._schedule(7) == self._schedule(7)

    def test_different_seed_different_schedule(self):
        assert self._schedule(7) != self._schedule(8)

    def test_script_cycles_exactly(self, network):
        injector = FaultInjector(seed=0)
        faulty = injector.engine(_engine(network), script=["ok", "error", "slow"], spike_s=0.0)
        observed = []
        for _ in range(6):
            try:
                faulty.route(RouteRequest(0, 20))
                observed.append("served")
            except TransientEngineError:
                observed.append("raised")
        assert observed == ["served", "raised", "served"] * 2
        assert faulty.counters.actions == ["ok", "error", "slow"] * 2
        assert faulty.counters.injected_errors == 2
        assert faulty.counters.injected_spikes == 2

    def test_rejects_unknown_script_action(self, network):
        with pytest.raises(ValueError):
            FaultInjector(seed=0).engine(_engine(network), script=["explode"])

    def test_faulty_feed_drop_and_crash(self, network):
        injector = FaultInjector(seed=0)
        feed = TrafficFeed(network)
        faulty = injector.feed(feed, script=["drop", "error", "ok"])
        update = TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)
        result = faulty.apply([update])
        assert result.applied == 0 and not result.touched_edges
        with pytest.raises(TransientEngineError):
            faulty.apply([update])
        assert faulty.apply([update]).applied == 1
        assert faulty.counters.dropped_batches == 1
        assert faulty.counters.injected_errors == 1


# ---------------------------------------------------------------------- #
# TrafficDrain
# ---------------------------------------------------------------------- #
class TestTrafficDrain:
    def test_coalesces_last_write_wins(self, network):
        feed = TrafficFeed(network)
        drain = TrafficDrain(feed, start=False)
        drain.submit([TrafficUpdate.set(0, 1, travel_time_s=100.0)])
        drain.submit([TrafficUpdate.set(0, 1, travel_time_s=200.0)])
        drain.submit([TrafficUpdate.set(1, 2, travel_time_s=50.0)])
        applied = drain.drain_once()
        assert applied == 2  # three updates, two distinct edges
        stats = drain.stats()
        assert stats.applied_batches == 1
        assert stats.coalesced_updates == 1
        assert network.edge(0, 1).travel_time_s == 200.0  # the newest won
        assert network.edge(1, 2).travel_time_s == 50.0

    def test_full_queue_sheds_newest(self, network):
        drain = TrafficDrain(TrafficFeed(network), max_queue=2, start=False)
        update = TrafficUpdate.scale_by(0, 1, travel_time_s=1.1)
        assert drain.submit([update])
        assert drain.submit([update])
        assert not drain.submit([update])  # shed, never blocks
        assert drain.stats().dropped_batches == 1

    def test_crash_restart_keeps_draining(self, network):
        injector = FaultInjector(seed=0)
        faulty_feed = injector.feed(TrafficFeed(network), script=["error", "ok"])
        drain = TrafficDrain(faulty_feed, start=False)
        update = TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)
        drain.submit([update])
        assert drain.drain_once() == 0  # the poisoned batch crashed apply
        stats = drain.stats()
        assert stats.crashes == 1
        assert stats.last_error is not None and "TransientEngineError" in stats.last_error
        drain.submit([update])
        assert drain.drain_once() == 1  # ingestion survived the crash
        assert drain.stats().applied_batches == 1

    def test_crash_restart_with_live_thread(self, network):
        injector = FaultInjector(seed=0)
        faulty_feed = injector.feed(TrafficFeed(network), script=["error", "ok"])
        drain = TrafficDrain(faulty_feed, poll_timeout_s=0.01)
        update = TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)
        drain.submit([update])
        assert drain.flush(timeout_s=5.0)
        drain.submit([update])
        assert drain.flush(timeout_s=5.0)
        assert drain.close(timeout_s=5.0)
        stats = drain.stats()
        assert stats.crashes == 1 and stats.applied_batches == 1
        assert not stats.running

    def test_staleness_accounting(self, network):
        drain = TrafficDrain(
            TrafficFeed(network), staleness_budget_s=1e-9, start=False
        )
        drain.submit([TrafficUpdate.scale_by(0, 1, travel_time_s=1.5)])
        time.sleep(0.002)
        drain.drain_once()
        stats = drain.stats()
        assert stats.last_staleness_s > 0.0
        assert stats.max_staleness_s >= stats.last_staleness_s
        assert stats.staleness_violations == 1

    def test_close_is_idempotent_and_submit_after_close_raises(self, network):
        drain = TrafficDrain(TrafficFeed(network), poll_timeout_s=0.01)
        assert drain.close(timeout_s=5.0)
        assert drain.close(timeout_s=5.0)
        with pytest.raises(RuntimeError):
            drain.submit([TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)])

    def test_queued_batches_drain_before_shutdown(self, network):
        feed = TrafficFeed(network)
        drain = TrafficDrain(feed, start=False)
        drain.submit([TrafficUpdate.set(0, 1, travel_time_s=123.0)])
        drain.start()
        assert drain.close(timeout_s=5.0)
        assert network.edge(0, 1).travel_time_s == 123.0


# ---------------------------------------------------------------------- #
# Service-level resilience
# ---------------------------------------------------------------------- #
class TestServiceResilience:
    def test_retry_recovers_transient_failure(self, network):
        injector = FaultInjector(seed=0)
        flaky = injector.engine(_engine(network), script=["error", "ok"])
        service = RoutingService(
            retry_policy=RetryPolicy(max_retries=1, base_delay_s=0.0, seed=0),
            enable_cache=False,
        )
        service.register("flaky", flaky)
        response = service.route(RouteRequest(0, 20))
        assert response.ok and not response.fallback_used
        assert response.retries == 1
        assert service.stats().retries == 1

    def test_scripted_breaker_transitions(self, network):
        injector = FaultInjector(seed=0)
        faulty = injector.engine(_engine(network), script=["error"])
        service = RoutingService(
            breaker=CircuitBreakerConfig(
                window=4, failure_threshold=0.5, min_samples=2, recovery_s=60.0
            ),
            enable_cache=False,
            serve_degraded=False,
        )
        service.register("primary", faulty, fallback="backup", default=True)
        service.register("backup", _engine(network, "backup"))

        for _ in range(2):  # two scripted failures trip the breaker
            assert service.route(RouteRequest(0, 20)).fallback_used
        assert service.breaker("primary").state == "open"
        assert service.stats().breaker_trips == 1

        calls_when_open = faulty.counters.calls
        response = service.route(RouteRequest(0, 21))
        assert response.ok and response.fallback_used
        assert faulty.counters.calls == calls_when_open  # skipped, not called
        assert service.stats().breaker_states == {
            "primary": "open",
            "backup": "closed",
        }

    def test_breaker_half_open_recovery_through_service(self, network):
        injector = FaultInjector(seed=0)
        flaky = injector.engine(_engine(network), script=["error", "error", "ok"])
        service = RoutingService(
            breaker=CircuitBreakerConfig(
                window=4, failure_threshold=0.5, min_samples=2, recovery_s=0.0
            ),
            enable_cache=False,
            serve_degraded=False,
        )
        service.register("flaky", flaky, fallback="backup", default=True)
        service.register("backup", _engine(network, "backup"))
        service.route(RouteRequest(0, 20))
        service.route(RouteRequest(0, 21))
        assert service.breaker("flaky").trips == 1
        # recovery_s=0: the next call is the half-open probe; script says ok.
        response = service.route(RouteRequest(0, 22))
        assert response.ok and not response.fallback_used
        assert service.breaker("flaky").state == "closed"

    def test_no_path_error_does_not_trip_breaker_or_degrade(self, network):
        service = RoutingService(
            breaker=CircuitBreakerConfig(min_samples=1, failure_threshold=0.1),
            enable_cache=False,
        )
        service.register("nopath", _no_path_engine(network))
        for _ in range(5):
            response = service.route(RouteRequest(0, 20))
            assert not response.ok and not response.degraded
            assert "NoPathError" in response.error
        assert service.breaker("nopath").state == "closed"
        assert service.stats().breaker_trips == 0
        assert service.stats().degraded_responses == 0

    def test_degraded_serving_flags_stale_route(self, network):
        injector = FaultInjector(seed=0)
        flaky = injector.engine(_engine(network), script=["ok", "error"])
        service = RoutingService(enable_cache=False)
        service.register("flaky", flaky)
        fresh = service.route(RouteRequest(0, 20))
        assert fresh.ok and not fresh.degraded

        degraded = service.route(RouteRequest(0, 20))
        assert degraded.ok and degraded.degraded
        assert degraded.path == fresh.path
        assert degraded.diagnostics.case == "degraded-stale"
        assert degraded.diagnostics.served_cost_version == network.cost_version
        assert service.stats().degraded_responses == 1

    def test_degraded_response_is_never_recached(self, network):
        injector = FaultInjector(seed=0)
        flaky = injector.engine(_engine(network), script=["ok", "error", "error"])
        service = RoutingService(enable_cache=True)
        service.register("flaky", flaky)
        service.route(RouteRequest(0, 20))
        service.clear_cache()  # force the degraded path on the next call
        first = service.route(RouteRequest(0, 20))
        assert first.degraded
        second = service.route(RouteRequest(0, 20))
        assert second.degraded and not second.cache_hit  # not replayed as fresh

    def test_no_stale_store_hit_without_transient_failure(self, network):
        service = RoutingService(enable_cache=False)
        service.register("good", _engine(network), default=True)
        service.register("nopath", _no_path_engine(network))
        service.route(RouteRequest(0, 20))  # primes the stale store for "good"
        response = service.route(RouteRequest(0, 20), engine="nopath")
        assert not response.ok and not response.degraded

    def test_deadline_expiry_yields_structured_error(self, network):
        service = RoutingService(enable_cache=False, serve_degraded=False)
        service.register("slow", _engine(network))
        response = service.route(RouteRequest(0, 20, deadline_s=1e-12))
        assert not response.ok
        assert "DeadlineExceededError" in response.error
        assert service.stats().deadline_exceeded == 1

    def test_deadline_expiry_serves_degraded_when_primed(self, network):
        service = RoutingService(enable_cache=False)
        service.register("engine", _engine(network))
        primed = service.route(RouteRequest(0, 20))
        assert primed.ok
        response = service.route(RouteRequest(0, 20, deadline_s=1e-12))
        assert response.ok and response.degraded

    def test_admission_shed_is_counted_and_recovers(self, network):
        service = RoutingService(enable_cache=False, max_in_flight=1)
        service.register("engine", _engine(network))
        service.admission.acquire()  # saturate the only slot
        try:
            response = service.route(RouteRequest(0, 20))
            assert not response.ok
            assert "ServiceOverloadedError" in response.error
        finally:
            service.admission.release()
        assert service.stats().shed == 1
        assert service.route(RouteRequest(0, 20)).ok  # slot freed, serves again

    def test_cache_hits_bypass_admission(self, network):
        service = RoutingService(enable_cache=True, max_in_flight=1)
        service.register("engine", _engine(network))
        warm = service.route(RouteRequest(0, 20))
        assert warm.ok
        service.admission.acquire()
        try:
            hit = service.route(RouteRequest(0, 20))
            assert hit.ok and hit.cache_hit  # no engine work -> always served
        finally:
            service.admission.release()

    def test_sanitize_strict_clean_on_non_degraded_path(self, network):
        service = RoutingService(enable_cache=True)
        service.register("engine", _engine(network))
        feed = TrafficFeed(network, services=[service])
        with sanitize(strict=True) as sanitizer:
            for destination in (20, 21, 22):
                assert service.route(RouteRequest(0, destination)).ok
            feed.apply([TrafficUpdate.scale_by(0, 1, travel_time_s=3.0)])
            for destination in (20, 21, 22):
                response = service.route(RouteRequest(0, destination))
                assert response.ok and not response.degraded
        assert sanitizer.findings == []

    def test_chaos_run_is_deterministic(self, network):
        def run(seed: int):
            injector = FaultInjector(seed=seed)
            flaky = injector.engine(_engine(network), error_rate=0.4)
            service = RoutingService(
                breaker=CircuitBreakerConfig(
                    window=4, failure_threshold=0.5, min_samples=2, recovery_s=60.0
                ),
                retry_policy=RetryPolicy(max_retries=1, base_delay_s=0.0, seed=seed),
                enable_cache=False,
            )
            service.register("flaky", flaky, fallback="backup", default=True)
            service.register("backup", _engine(network, "backup"))
            outcomes = []
            for i in range(30):
                response = service.route(RouteRequest(0, 20 + (i % 5)))
                outcomes.append(
                    (response.ok, response.fallback_used, response.degraded,
                     response.retries)
                )
            stats = service.stats()
            return (
                outcomes,
                list(flaky.counters.actions),
                stats.breaker_trips,
                stats.degraded_responses,
                stats.retries,
                stats.fallbacks,
            )

        assert run(7) == run(7)

    def test_close_mid_batch_does_not_deadlock(self, network):
        service = RoutingService(enable_cache=False, batch_min_size=10_000)
        service.register("engine", _engine(network))
        requests = [RouteRequest(i % 30, (i * 7) % 30) for i in range(200)]
        results: list = []

        def batch():
            results.append(service.route_many(requests, max_workers=4))

        worker = threading.Thread(target=batch)
        worker.start()
        closed = service.close(timeout_s=10.0)
        worker.join(timeout=30.0)
        assert not worker.is_alive(), "route_many deadlocked against close()"
        assert len(results) == 1 and len(results[0]) == len(requests)
        assert closed in (True, False)  # close returned (bounded), no hang
        # The service stays usable after close().
        assert service.route(RouteRequest(0, 20)).ok

    def test_close_stops_attached_drain_first(self, network):
        service = RoutingService(enable_cache=True)
        service.register("engine", _engine(network))
        feed = TrafficFeed(network, services=[service])
        drain = service.attach_drain(TrafficDrain(feed, poll_timeout_s=0.01))
        drain.submit([TrafficUpdate.scale_by(0, 1, travel_time_s=2.0)])
        assert service.close(timeout_s=5.0)
        assert drain.closed and not drain.stats().running
        assert service.stats().drain is not None
        assert service.stats().drain.applied_batches == 1  # drained, not lost

    def test_stats_surface_drain_counters(self, network):
        service = RoutingService(enable_cache=False)
        service.register("engine", _engine(network))
        assert service.stats().drain is None
        drain = service.attach_drain(
            TrafficDrain(TrafficFeed(network), start=False)
        )
        drain.submit([TrafficUpdate.scale_by(0, 1, travel_time_s=1.5)])
        drain.drain_once()
        snapshot = service.stats().drain
        assert snapshot is not None and snapshot.applied_batches == 1

    def test_route_many_under_chaos_answers_every_slot(self, network):
        injector = FaultInjector(seed=13)
        flaky = injector.engine(_engine(network), error_rate=0.3)
        service = RoutingService(
            retry_policy=RetryPolicy(max_retries=1, base_delay_s=0.0, seed=13),
            enable_cache=False,
        )
        service.register("flaky", flaky, fallback="backup", default=True)
        service.register("backup", _engine(network, "backup"))
        requests = [RouteRequest(i % 30, (i * 3 + 1) % 30) for i in range(40)]
        responses = service.route_many(requests, max_workers=4)
        assert len(responses) == len(requests)
        for response in responses:
            assert response is not None
            assert response.ok or response.degraded or response.error
