"""Tests for the evaluation harness, metrics, categorization, and reporting."""

from __future__ import annotations

import pytest

from repro.baselines import FastestBaseline, L2RAlgorithm, ShortestBaseline
from repro.evaluation import (
    EvaluationHarness,
    RegionCategory,
    accuracy_eq1,
    accuracy_eq4,
    aggregate,
    band_label,
    format_accuracy_table,
    format_series,
    region_category,
)
from repro.evaluation.metrics import QueryResult
from repro.routing import Path


class TestMetrics:
    def test_accuracy_bounds(self, tiny, tiny_split):
        trajectory = tiny_split.test[0]
        same = accuracy_eq1(tiny.network, trajectory.path, trajectory.path)
        assert same == pytest.approx(100.0)
        assert accuracy_eq4(tiny.network, trajectory.path, trajectory.path) == pytest.approx(100.0)

    def test_accuracy_partial(self, line_network):
        ground = Path.of([0, 1, 2, 3, 4])
        constructed = Path.of([0, 1, 2])
        assert accuracy_eq1(line_network, ground, constructed) == pytest.approx(50.0)
        assert accuracy_eq4(line_network, ground, constructed) == pytest.approx(50.0)

    def test_aggregate_groups_by_algorithm(self):
        results = [
            QueryResult("A", 1, 0, RegionCategory.IN_REGION, 80.0, 70.0, 0.01, 2.0),
            QueryResult("A", 2, 0, RegionCategory.IN_REGION, 60.0, 50.0, 0.03, 3.0),
            QueryResult("B", 1, 0, RegionCategory.IN_REGION, 40.0, 30.0, 0.02, 2.0),
        ]
        rows = aggregate(results, "g")
        by_name = {row.algorithm: row for row in rows}
        assert by_name["A"].mean_accuracy_eq1 == pytest.approx(70.0)
        assert by_name["A"].query_count == 2
        assert by_name["B"].mean_accuracy_eq4 == pytest.approx(30.0)

    def test_aggregate_failure_rate(self):
        results = [
            QueryResult("A", 1, 0, RegionCategory.IN_REGION, 80.0, 70.0, 0.01, 2.0),
            QueryResult("A", 2, 0, RegionCategory.IN_REGION, 0.0, 0.0, 0.01, 2.0, failed=True),
        ]
        rows = aggregate(results, "g")
        assert rows[0].failure_rate == pytest.approx(0.5)
        # Failed queries do not drag down the accuracy mean.
        assert rows[0].mean_accuracy_eq1 == pytest.approx(80.0)


class TestCategories:
    def test_region_category_classification(self, fitted_l2r, tiny):
        region_graph = fitted_l2r.region_graph
        covered = [v for v in tiny.network.vertex_ids() if region_graph.region_of(v) is not None]
        uncovered = [v for v in tiny.network.vertex_ids() if region_graph.region_of(v) is None]
        assert region_category(region_graph, covered[0], covered[1]) is RegionCategory.IN_REGION
        if uncovered:
            assert (
                region_category(region_graph, covered[0], uncovered[0])
                is RegionCategory.IN_OUT_REGION
            )
            if len(uncovered) > 1:
                assert (
                    region_category(region_graph, uncovered[0], uncovered[1])
                    is RegionCategory.OUT_REGION
                )

    def test_band_label(self):
        assert band_label(((0.0, 2.0), (2.0, 5.0)), 1) == "(2,5]"


class TestHarness:
    @pytest.fixture(scope="class")
    def report(self, tiny, tiny_split, fitted_l2r):
        harness = EvaluationHarness(
            network=tiny.network,
            region_graph=fitted_l2r.region_graph,
            bands_km=tiny.bands_km,
        )
        harness.add_algorithm(L2RAlgorithm(fitted_l2r))
        harness.add_algorithm(ShortestBaseline(tiny.network))
        harness.add_algorithm(FastestBaseline(tiny.network))
        return harness.evaluate(tiny_split.test, max_queries=25)

    def test_all_algorithms_evaluated(self, report):
        assert set(report.algorithms()) == {"L2R", "Shortest", "Fastest"}

    def test_result_count(self, report):
        assert len(report.results) == 3 * min(25, len(report.results) // 3)

    def test_accuracies_in_percent_range(self, report):
        for result in report.results:
            assert 0.0 <= result.accuracy_eq1 <= 100.0
            assert 0.0 <= result.accuracy_eq4 <= 100.0
            assert result.accuracy_eq4 <= result.accuracy_eq1 + 1e-9

    def test_by_distance_covers_bands_with_data(self, report):
        rows = report.by_distance()
        assert rows
        assert all(row.query_count >= 0 for row in rows)

    def test_by_region_covers_categories(self, report):
        rows = report.by_region()
        groups = {row.group for row in rows}
        assert groups <= {c.value for c in RegionCategory}

    def test_mean_accuracy_and_runtime_accessors(self, report):
        for algorithm in report.algorithms():
            assert 0.0 <= report.mean_accuracy(algorithm) <= 100.0
            assert report.mean_runtime(algorithm) >= 0.0

    def test_l2r_at_least_as_good_as_shortest(self, report):
        assert report.mean_accuracy("L2R") >= report.mean_accuracy("Shortest") * 0.9

    def test_runtimes_positive(self, report):
        assert all(result.runtime_s >= 0.0 for result in report.results)


class TestReporting:
    def test_format_accuracy_table(self):
        results = [
            QueryResult("L2R", 1, 0, RegionCategory.IN_REGION, 90.0, 85.0, 0.01, 2.0),
            QueryResult("Shortest", 1, 0, RegionCategory.IN_REGION, 60.0, 55.0, 0.02, 2.0),
        ]
        rows = aggregate(results, "(0,2]")
        text = format_accuracy_table(rows, title="Fig 10", value="accuracy")
        assert "Fig 10" in text
        assert "L2R" in text and "Shortest" in text
        assert "%" in text

    def test_format_runtime_table(self):
        results = [QueryResult("L2R", 1, 0, RegionCategory.IN_REGION, 90.0, 85.0, 0.5, 2.0)]
        text = format_accuracy_table(aggregate(results, "g"), title="Fig 12", value="runtime")
        assert "ms" in text

    def test_format_table_empty_cell(self):
        rows = aggregate([QueryResult("A", 1, 0, RegionCategory.IN_REGION, 1.0, 1.0, 0.1, 2.0)], "g1")
        rows += aggregate([QueryResult("B", 1, 0, RegionCategory.IN_REGION, 1.0, 1.0, 0.1, 2.0)], "g2")
        text = format_accuracy_table(rows, title="T")
        assert "-" in text

    def test_format_series(self):
        text = format_series({"Accuracy": [80.0, 85.0], "N-Rate": [5.0, 2.0]}, ["x", "2x"], "Fig 9a")
        assert "Fig 9a" in text
        assert "Accuracy" in text and "N-Rate" in text


class TestHarnessRaisingEngine:
    def test_raising_engine_recorded_as_failed_not_crash(self, tiny, fitted_l2r, tiny_split):
        """An engine that raises (instead of returning an error response) must
        degrade to failed=True query results, not abort the evaluation."""
        from repro.exceptions import NoPathError
        from repro.service import RouteRequest

        class RaisingEngine:
            name = "Raising"

            def route(self, request: RouteRequest):
                raise NoPathError(request.source, request.destination, "synthetic")

        harness = EvaluationHarness(
            network=tiny.network,
            region_graph=fitted_l2r.region_graph,
            bands_km=((0.0, 5.0), (5.0, 10.0)),
        )
        harness.add_engine(RaisingEngine())
        report = harness.evaluate(tiny_split.test[:5])
        assert len(report.results) == 5
        assert all(r.failed for r in report.results)

    def test_unscorable_ok_response_recorded_as_failed(self, tiny, fitted_l2r, tiny_split):
        """An ok response whose path does not exist on the network must not
        abort the evaluation either."""
        from repro.routing import Path as RoutePath
        from repro.service import RouteResponse

        class OffNetworkEngine:
            name = "OffNetwork"

            def route(self, request):
                return RouteResponse(
                    request=request, path=RoutePath.of([999_999, 999_998]), engine=self.name
                )

        harness = EvaluationHarness(
            network=tiny.network,
            region_graph=fitted_l2r.region_graph,
            bands_km=((0.0, 5.0), (5.0, 10.0)),
        )
        harness.add_engine(OffNetworkEngine())
        report = harness.evaluate(tiny_split.test[:4])
        assert len(report.results) == 4
        assert all(r.failed for r in report.results)
