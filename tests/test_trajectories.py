"""Tests for trajectory models, GPS sampling, I/O, and statistics."""

from __future__ import annotations

import pytest

from repro.exceptions import TrajectoryError
from repro.routing import Path, shortest_path
from repro.trajectories import (
    D1_DISTANCE_BANDS_KM,
    D2_DISTANCE_BANDS_KM,
    GPSRecord,
    MatchedTrajectory,
    Trajectory,
    band_index,
    distance_band_statistics,
    format_distance_table,
    high_frequency_sampler,
    load_matched_jsonl,
    load_raw_csv,
    low_frequency_sampler,
    sample_path,
    save_matched_jsonl,
    save_raw_csv,
    split_by_driver,
    validate_against_network,
)
from repro.trajectories.sampling import SamplingSpec


def _make_trajectory(records=None, trajectory_id=1, driver_id=2):
    if records is None:
        records = (
            GPSRecord(10.0, 56.0, 0.0),
            GPSRecord(10.001, 56.0, 10.0),
            GPSRecord(10.002, 56.0, 20.0),
        )
    return Trajectory(trajectory_id=trajectory_id, driver_id=driver_id, records=tuple(records))


class TestTrajectoryModel:
    def test_needs_two_records(self):
        with pytest.raises(TrajectoryError):
            Trajectory(trajectory_id=1, driver_id=1, records=(GPSRecord(10.0, 56.0, 0.0),))

    def test_timestamps_must_be_monotone(self):
        with pytest.raises(TrajectoryError):
            _make_trajectory(
                records=(GPSRecord(10.0, 56.0, 10.0), GPSRecord(10.0, 56.0, 5.0))
            )

    def test_duration_and_sampling(self):
        trajectory = _make_trajectory()
        assert trajectory.duration_s == 20.0
        assert trajectory.sampling_interval_s == pytest.approx(10.0)
        assert trajectory.sampling_rate_hz == pytest.approx(0.1)

    def test_coordinates(self):
        trajectory = _make_trajectory()
        assert trajectory.coordinates()[0] == (10.0, 56.0)

    def test_len_and_iter(self):
        trajectory = _make_trajectory()
        assert len(trajectory) == 3
        assert len(list(trajectory)) == 3


class TestMatchedTrajectory:
    def test_requires_two_vertices(self):
        with pytest.raises(TrajectoryError):
            MatchedTrajectory(
                trajectory_id=1, driver_id=1, path=Path.of([5]), departure_time=0.0, duration_s=10.0
            )

    def test_source_destination(self, line_network):
        matched = MatchedTrajectory(
            trajectory_id=1, driver_id=1, path=Path.of([0, 1, 2]), departure_time=0.0, duration_s=60.0
        )
        assert matched.source == 0
        assert matched.destination == 2
        assert matched.distance_km(line_network) == pytest.approx(2.0)

    def test_validate_against_network(self, line_network):
        good = MatchedTrajectory(
            trajectory_id=1, driver_id=1, path=Path.of([0, 1]), departure_time=0.0, duration_s=1.0
        )
        bad = MatchedTrajectory(
            trajectory_id=2, driver_id=1, path=Path.of([0, 4]), departure_time=0.0, duration_s=1.0
        )
        assert validate_against_network([good, bad], line_network) == [good]


class TestSampling:
    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            SamplingSpec(interval_s=0.0, noise_std_m=1.0)
        with pytest.raises(ValueError):
            SamplingSpec(interval_s=1.0, noise_std_m=-1.0)
        with pytest.raises(ValueError):
            SamplingSpec(interval_s=1.0, noise_std_m=1.0, speed_factor=0.0)

    def test_presets(self):
        assert high_frequency_sampler().interval_s == 1.0
        assert low_frequency_sampler().interval_s >= 10.0

    def test_high_frequency_emits_many_records(self, grid_network):
        path = shortest_path(grid_network, 0, 99)
        trajectory = sample_path(
            grid_network, path, high_frequency_sampler(noise_std_m=0.0), trajectory_id=1, driver_id=1
        )
        # At 1 Hz the number of records tracks the travel time in seconds.
        assert len(trajectory) >= path.travel_time_s(grid_network) * 0.8

    def test_low_frequency_emits_fewer_records(self, grid_network):
        path = shortest_path(grid_network, 0, 99)
        high = sample_path(grid_network, path, high_frequency_sampler(0.0), 1, 1)
        low = sample_path(grid_network, path, low_frequency_sampler(20.0, 0.0), 2, 1)
        assert len(low) < len(high)

    def test_records_are_time_ordered(self, grid_network):
        path = shortest_path(grid_network, 0, 45)
        trajectory = sample_path(grid_network, path, high_frequency_sampler(), 3, 1)
        times = [r.timestamp for r in trajectory.records]
        assert times == sorted(times)

    def test_departure_time_respected(self, grid_network):
        path = shortest_path(grid_network, 0, 12)
        trajectory = sample_path(
            grid_network, path, high_frequency_sampler(), 4, 1, departure_time=1000.0
        )
        assert trajectory.departure_time == pytest.approx(1000.0)

    def test_noise_zero_puts_first_record_on_source(self, grid_network):
        path = shortest_path(grid_network, 0, 12)
        spec = SamplingSpec(interval_s=1.0, noise_std_m=0.0)
        trajectory = sample_path(grid_network, path, spec, 5, 1)
        assert trajectory.records[0].lonlat == grid_network.coordinates(0)


class TestStatistics:
    def test_band_index_half_open(self):
        assert band_index(0.5, D2_DISTANCE_BANDS_KM) == 0
        assert band_index(2.0, D2_DISTANCE_BANDS_KM) == 0
        assert band_index(2.1, D2_DISTANCE_BANDS_KM) == 1
        assert band_index(40.0, D2_DISTANCE_BANDS_KM) is None
        assert band_index(0.0, D2_DISTANCE_BANDS_KM) == 0

    def test_d1_bands_cover_long_trips(self):
        assert band_index(250.0, D1_DISTANCE_BANDS_KM) == 3

    def test_distance_band_statistics(self, tiny):
        stats = distance_band_statistics(tiny.trajectories, tiny.network, D2_DISTANCE_BANDS_KM)
        assert stats.total > 0
        assert sum(stats.counts) == stats.total
        assert sum(stats.percentages) == pytest.approx(100.0, abs=0.1)

    def test_format_distance_table(self, tiny):
        stats = distance_band_statistics(tiny.trajectories, tiny.network, D2_DISTANCE_BANDS_KM)
        text = format_distance_table(stats, title="Tiny")
        assert "Tiny" in text
        assert "Percentage" in text

    def test_empty_statistics(self, tiny):
        stats = distance_band_statistics([], tiny.network, D2_DISTANCE_BANDS_KM)
        assert stats.total == 0
        assert all(p == 0.0 for p in stats.percentages)


class TestIO:
    def test_raw_csv_round_trip(self, tmp_path, grid_network):
        path = shortest_path(grid_network, 0, 25)
        trajectory = sample_path(grid_network, path, high_frequency_sampler(), 7, 3)
        target = tmp_path / "raw.csv"
        save_raw_csv([trajectory], target)
        loaded = load_raw_csv(target)
        assert len(loaded) == 1
        assert loaded[0].trajectory_id == 7
        assert loaded[0].driver_id == 3
        assert len(loaded[0]) == len(trajectory)
        assert loaded[0].records[0].lon == pytest.approx(trajectory.records[0].lon)

    def test_matched_jsonl_round_trip(self, tmp_path, tiny):
        target = tmp_path / "matched.jsonl"
        sample = tiny.trajectories[:10]
        save_matched_jsonl(sample, target)
        loaded = load_matched_jsonl(target)
        assert len(loaded) == 10
        assert loaded[0].path.vertices == sample[0].path.vertices
        assert loaded[0].departure_time == pytest.approx(sample[0].departure_time)

    def test_split_by_driver(self, tiny):
        grouped = split_by_driver(tiny.trajectories)
        assert sum(len(v) for v in grouped.values()) == len(tiny.trajectories)
        for driver_id, items in grouped.items():
            assert all(t.driver_id == driver_id for t in items)
