"""Tests for the driver-population trajectory generator and the scenarios."""

from __future__ import annotations

import pytest

from repro.datasets import d2_like_scenario, tiny_scenario
from repro.datasets.splits import k_fold_partitions, split_by_id, split_by_time
from repro.trajectories import GeneratorConfig, TrajectoryGenerator, emit_and_match
from repro.trajectories.generator import DriverProfile


class TestGenerator:
    def test_generates_requested_count(self, generated_grid):
        assert len(generated_grid.trajectories) == 80

    def test_all_paths_valid(self, grid_network, generated_grid):
        assert all(t.path.is_valid(grid_network) for t in generated_grid.trajectories)

    def test_deterministic_given_seed(self, grid_network):
        config = GeneratorConfig(n_drivers=5, n_trajectories=20, seed=77)
        a = TrajectoryGenerator(grid_network, config).generate()
        b = TrajectoryGenerator(grid_network, config).generate()
        assert [t.path.vertices for t in a.trajectories] == [t.path.vertices for t in b.trajectories]

    def test_driver_ids_in_range(self, generated_grid):
        driver_ids = {t.driver_id for t in generated_grid.trajectories}
        assert driver_ids <= set(range(10))

    def test_hotspot_skew_concentrates_endpoints(self, grid_network):
        config = GeneratorConfig(
            n_drivers=8,
            n_trajectories=60,
            hotspot_count=2,
            hotspot_probability=0.95,
            hotspot_radius_m=350.0,
            seed=5,
        )
        data = TrajectoryGenerator(grid_network, config).generate()
        sources = [t.source for t in data.trajectories]
        # With 2 hotspots and 0.95 probability, a few source vertices dominate.
        from collections import Counter

        top_share = sum(c for _, c in Counter(sources).most_common(10)) / len(sources)
        assert top_share > 0.5

    def test_trip_preferences_recorded(self, generated_grid):
        assert len(generated_grid.trip_preferences) == len(generated_grid.trajectories)

    def test_drivers_have_profiles(self, generated_grid):
        assert all(isinstance(d, DriverProfile) for d in generated_grid.drivers)
        assert all(0.5 <= d.adherence <= 1.0 for d in generated_grid.drivers)

    def test_too_small_network_rejected(self):
        from repro.network import RoadNetwork

        network = RoadNetwork()
        for i in range(3):
            network.add_vertex(i, 10.0 + i * 0.001, 56.0)
        with pytest.raises(ValueError):
            TrajectoryGenerator(network)

    def test_departure_times_within_day(self, generated_grid):
        assert all(0 <= t.departure_time < 86_400 for t in generated_grid.trajectories)

    def test_emit_and_match_round_trip(self, grid_network, generated_grid):
        sample = generated_grid.trajectories[:5]
        rematched = emit_and_match(grid_network, sample)
        assert len(rematched) >= 4  # occasional HMM failure tolerated
        for trajectory in rematched:
            assert trajectory.path.is_valid(grid_network)


class TestScenarios:
    def test_tiny_scenario_contents(self, tiny):
        assert tiny.network.vertex_count == 100
        assert len(tiny.trajectories) > 50
        assert tiny.bands_km

    def test_scenario_scale_validation(self):
        with pytest.raises(ValueError):
            d2_like_scenario(scale=0.0)

    def test_tiny_scenario_deterministic(self):
        a = tiny_scenario(seed=3, n_trajectories=30)
        b = tiny_scenario(seed=3, n_trajectories=30)
        assert [t.path.vertices for t in a.trajectories] == [t.path.vertices for t in b.trajectories]


class TestSplits:
    def test_split_by_time_ordering(self, tiny):
        split = split_by_time(tiny.trajectories, train_fraction=0.8)
        assert split.train and split.test
        assert max(t.departure_time for t in split.train) <= min(
            t.departure_time for t in split.test
        ) + 1e-9

    def test_split_by_id_deterministic_partition(self, tiny):
        a = split_by_id(tiny.trajectories, train_fraction=0.75)
        b = split_by_id(tiny.trajectories, train_fraction=0.75)
        assert [t.trajectory_id for t in a.train] == [t.trajectory_id for t in b.train]
        assert len(a.train) + len(a.test) == len(tiny.trajectories)
        assert 0.5 < a.train_fraction < 0.95

    def test_split_fraction_validation(self, tiny):
        with pytest.raises(ValueError):
            split_by_time(tiny.trajectories, train_fraction=1.5)
        with pytest.raises(ValueError):
            split_by_id(tiny.trajectories, train_fraction=0.0)

    def test_k_fold_partitions(self):
        folds = k_fold_partitions(list(range(10)), k=5)
        assert len(folds) == 5
        assert sorted(x for fold in folds for x in fold) == list(range(10))
        assert all(len(fold) == 2 for fold in folds)

    def test_k_fold_validation(self):
        with pytest.raises(ValueError):
            k_fold_partitions([1, 2, 3], k=1)
