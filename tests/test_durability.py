"""Crash-consistent durability: WAL framing, snapshots, recovery, chaos.

The contract under test: after a crash at *any* instrumented instant —
mid-frame, pre-fsync, mid-rotation, mid-snapshot-publish — restart recovery
plus a resume of the non-durable suffix reaches a state bit-identical to an
uninterrupted run.  Torn or corrupted records are detected and discarded,
never silently replayed; a defect in the middle of the chain quarantines
everything after it.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import check_cost_coherence
from repro.network import grid_city_network
from repro.network.compiled.graph import EDGE_COST_ATTRIBUTES
from repro.service import (
    KILL_POINTS,
    DiskJournal,
    DurabilityManager,
    FaultInjector,
    JournalError,
    JournalRecord,
    KillSwitch,
    RecoveryError,
    RoutingService,
    SimulatedCrash,
    SnapshotStore,
    load_model,
    save_model,
)
from repro.service.durability import (
    crash_and_recover,
    final_state,
    reference_state,
    run_killpoint_matrix,
    states_identical,
    topology_stamp,
)
from repro.service.durability.journal import _HEADER
from repro.service.sharding.protocol import CostDiff
from repro.service.sharding.replication import CostDiffJournal
from repro.traffic import TrafficFeed
from repro.traffic.updates import TrafficUpdate


def _record(version: int, payload: object = None) -> JournalRecord:
    return JournalRecord(
        kind="traffic", base_version=version, payload=payload or ("p", version)
    )


def _effective_batches(network, count: int, seed: int, size: int = 3):
    """Batches guaranteed to change at least one cost each (scale != 1)."""
    rng = random.Random(seed)
    edges = [(e.source, e.target) for e in network.edges()]
    batches = []
    for _ in range(count):
        batches.append(
            [
                TrafficUpdate.scale_by(
                    *rng.choice(edges), travel_time_s=rng.uniform(1.1, 2.5)
                )
                for _ in range(size)
            ]
        )
    return batches


def _make_network_factory(width=4, height=4, seed=7):
    return lambda: grid_city_network(width, height, seed=seed)


# -------------------------------------------------------------------- #
# DiskJournal: framing, repair, rotation, retention
# -------------------------------------------------------------------- #
class TestDiskJournal:
    def test_round_trip_preserves_records_and_order(self, tmp_path):
        with DiskJournal(tmp_path) as journal:
            for version in range(5):
                journal.append(_record(version))
            scan = journal.read_records()
        assert [r.base_version for r in scan.records] == [0, 1, 2, 3, 4]
        assert not scan.truncated and scan.dropped_bytes == 0

    def test_records_survive_reopen(self, tmp_path):
        with DiskJournal(tmp_path) as journal:
            journal.append(_record(1))
            journal.append(_record(2))
        with DiskJournal(tmp_path) as journal:
            assert [r.base_version for r in journal.read_records().records] == [1, 2]

    def test_torn_tail_is_truncated_not_replayed(self, tmp_path):
        with DiskJournal(tmp_path) as journal:
            journal.append(_record(1))
            journal.append(_record(2))
            (segment,) = journal.segment_paths()
        # Tear the final frame: keep its header plus half the payload.
        data = segment.read_bytes()
        records, _, _ = [], 0, True
        offset = 0
        frames = []
        while offset < len(data):
            length, _crc = _HEADER.unpack_from(data, offset)
            end = offset + _HEADER.size + length
            frames.append((offset, end))
            offset = end
        start, end = frames[-1]
        segment.write_bytes(data[: start + _HEADER.size + (end - start) // 4])
        reopened = DiskJournal(tmp_path)
        try:
            scan = reopened.read_records()
            assert [r.base_version for r in scan.records] == [1]
            assert reopened.torn_records_dropped == 1
            # The truncation is in place: a third append lands cleanly after
            # record 1 and the log stays replayable.
            reopened.append(_record(2))
            assert [
                r.base_version for r in reopened.read_records().records
            ] == [1, 2]
        finally:
            reopened.close()

    def test_corrupt_record_poisons_the_suffix(self, tmp_path):
        with DiskJournal(tmp_path) as journal:
            for version in range(4):
                journal.append(_record(version))
            (segment,) = journal.segment_paths()
        data = bytearray(segment.read_bytes())
        # Flip one payload byte of the SECOND frame: records 2 and 3 sit past
        # a broken link and must not be bridged.
        length, _ = _HEADER.unpack_from(data, 0)
        second = _HEADER.size + length
        data[second + _HEADER.size + 1] ^= 0xFF
        segment.write_bytes(bytes(data))
        with DiskJournal(tmp_path) as journal:
            scan = journal.read_records()
        assert [r.base_version for r in scan.records] == [0]
        assert scan.truncated is False or scan.dropped_bytes == 0  # repaired on open

    def test_mid_chain_defect_quarantines_later_segments(self, tmp_path):
        with DiskJournal(tmp_path, segment_max_bytes=1) as journal:
            for version in range(4):
                journal.append(_record(version))  # one record per segment
            segments = journal.segment_paths()
            assert len(segments) >= 4
        # Corrupt the second segment's payload; segments 3+ must be deleted.
        victim = segments[1]
        data = bytearray(victim.read_bytes())
        data[_HEADER.size + 1] ^= 0xFF
        victim.write_bytes(bytes(data))
        journal = DiskJournal(tmp_path)
        try:
            assert journal.discarded_segments >= 2
            scan = journal.read_records()
            assert [r.base_version for r in scan.records] == [0]
        finally:
            journal.close()

    def test_rotation_at_segment_cap(self, tmp_path):
        with DiskJournal(tmp_path, segment_max_bytes=64) as journal:
            for version in range(6):
                journal.append(_record(version))
            assert journal.rotations >= 1
            assert len(journal.segment_paths()) == journal.rotations + 1
            scan = journal.read_records()
        assert [r.base_version for r in scan.records] == list(range(6))

    def test_prune_through_deletes_only_covered_sealed_segments(self, tmp_path):
        with DiskJournal(tmp_path, segment_max_bytes=1) as journal:
            for version in range(5):
                journal.append(_record(version))
            before = len(journal.segment_paths())
            removed = journal.prune_through(3)  # records 0..2 covered
            assert removed == 3
            assert len(journal.segment_paths()) == before - 3
            scan = journal.read_records()
            assert [r.base_version for r in scan.records] == [3, 4]
            # The active segment is never pruned, whatever the version.
            assert journal.prune_through(10**9) <= before - 3 - 1
            assert journal.segment_paths()

    def test_fsync_policy_validation_and_counting(self, tmp_path):
        with pytest.raises(JournalError):
            DiskJournal(tmp_path / "a", fsync="sometimes")
        with pytest.raises(JournalError):
            DiskJournal(tmp_path / "b", fsync="interval", fsync_interval=0)
        with DiskJournal(tmp_path / "c", fsync="always") as journal:
            journal.append(_record(1))
            journal.append(_record(2))
            assert journal.syncs == 2
        with DiskJournal(
            tmp_path / "d", fsync="interval", fsync_interval=3
        ) as journal:
            for version in range(7):
                journal.append(_record(version))
            assert journal.syncs == 2  # after the 3rd and 6th appends
        with DiskJournal(tmp_path / "e", fsync="never") as journal:
            journal.append(_record(1))
            assert journal.syncs == 0
            journal.sync()  # explicit sync works under any policy
            assert journal.syncs == 1

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = DiskJournal(tmp_path)
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError):
            journal.append(_record(1))

    def test_oversized_record_is_rejected_before_touching_disk(self, tmp_path):
        from repro.service.durability import journal as journal_module

        with DiskJournal(tmp_path) as journal:
            blob = b"x" * (journal_module._MAX_RECORD_BYTES + 1)
            with pytest.raises(JournalError):
                journal.append(_record(1, payload=blob))
            assert journal.read_records().records == []


# -------------------------------------------------------------------- #
# SnapshotStore: atomic publish, validation, retention
# -------------------------------------------------------------------- #
def _arrays(edge_count: int, fill: float = 2.0) -> dict[str, np.ndarray]:
    return {
        attr: np.full(edge_count, fill, dtype=np.float64)
        for attr in EDGE_COST_ATTRIBUTES
    }


STAMP = {"vertices": 3, "edges": 4, "crc": 123}


class TestSnapshotStore:
    def test_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(7, _arrays(4), STAMP)
        state = store.latest()
        assert state is not None and state.cost_version == 7
        assert state.topology == STAMP
        for attr in EDGE_COST_ATTRIBUTES:
            assert np.array_equal(state.arrays[attr], _arrays(4)[attr])

    def test_latest_prefers_newest_valid(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=5)
        store.save(1, _arrays(4, 1.0), STAMP)
        store.save(2, _arrays(4, 2.0), STAMP)
        assert store.latest().cost_version == 2

    def test_corrupt_snapshot_is_skipped_for_an_older_valid_one(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=5)
        store.save(1, _arrays(4, 1.0), STAMP)
        newest = store.save(2, _arrays(4, 2.0), STAMP)
        blob = bytearray(newest.read_bytes())
        blob[-1] ^= 0xFF
        newest.write_bytes(bytes(blob))
        state = store.latest()
        assert state.cost_version == 1
        assert store.invalid_skipped == 1

    def test_truncated_snapshot_is_invalid(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = store.save(3, _arrays(4), STAMP)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.latest() is None

    def test_topology_mismatch_is_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(3, _arrays(4), STAMP)
        other = dict(STAMP, crc=999)
        assert store.latest(topology=other) is None
        assert store.latest(topology=STAMP) is not None

    def test_retention_prunes_oldest(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=2)
        for version in (1, 2, 3, 4):
            store.save(version, _arrays(4), STAMP)
        names = [p.name for p in store.snapshot_paths()]
        assert names == ["snapshot-000000000003.snap", "snapshot-000000000004.snap"]
        assert store.pruned_snapshots == 2

    def test_stale_tmp_files_are_swept_on_open(self, tmp_path):
        (tmp_path / "snapshot-000000000009.snap.tmp").write_bytes(b"half")
        store = SnapshotStore(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
        assert store.latest() is None  # the tmp was never published

    def test_crash_before_rename_leaves_previous_snapshot_intact(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(1, _arrays(4, 1.0), STAMP)
        crashing = SnapshotStore(tmp_path, kill=KillSwitch("snapshot.pre-rename", 1))
        with pytest.raises(SimulatedCrash):
            crashing.save(2, _arrays(4, 2.0), STAMP)
        reopened = SnapshotStore(tmp_path)
        assert reopened.latest().cost_version == 1

    def test_topology_stamp_detects_layout_changes(self):
        small = grid_city_network(3, 3, seed=1).compiled().topology
        large = grid_city_network(4, 4, seed=1).compiled().topology
        assert topology_stamp(small) == topology_stamp(small)
        assert topology_stamp(small) != topology_stamp(large)


# -------------------------------------------------------------------- #
# DurabilityManager: end-to-end recovery semantics
# -------------------------------------------------------------------- #
class TestRecovery:
    def test_wal_only_recovery_is_bit_identical(self, tmp_path):
        make = _make_network_factory()
        batches = _effective_batches(make(), 6, seed=11)
        reference = reference_state(make, batches)

        network = make()
        feed = TrafficFeed(network)
        with DurabilityManager(tmp_path) as manager:
            feed.attach_journal(manager)
            for batch in batches:
                feed.apply(batch)

        recovered = make()
        with DurabilityManager(tmp_path) as manager:
            report = manager.recover(recovered, TrafficFeed(recovered))
        assert report.replayed == 6 and report.verified and not report.gap
        assert states_identical(final_state(recovered), reference)

    def test_snapshot_plus_suffix_recovery(self, tmp_path):
        make = _make_network_factory()
        batches = _effective_batches(make(), 6, seed=13)
        reference = reference_state(make, batches)

        network = make()
        feed = TrafficFeed(network)
        with DurabilityManager(tmp_path, segment_max_bytes=256) as manager:
            feed.attach_journal(manager)
            for index, batch in enumerate(batches):
                feed.apply(batch)
                if index == 3:
                    manager.snapshot(network)

        recovered = make()
        with DurabilityManager(tmp_path) as manager:
            report = manager.recover(recovered, TrafficFeed(recovered))
        assert report.snapshot_version == make().cost_version + 4
        assert report.replayed == 2  # only the post-snapshot suffix
        assert states_identical(final_state(recovered), reference)

    def test_snapshot_prunes_covered_wal_segments(self, tmp_path):
        network = _make_network_factory()()
        feed = TrafficFeed(network)
        with DurabilityManager(tmp_path, segment_max_bytes=1) as manager:
            feed.attach_journal(manager)
            for batch in _effective_batches(network, 5, seed=3):
                feed.apply(batch)
            before = len(manager.journal.segment_paths())
            manager.snapshot(network)
            assert len(manager.journal.segment_paths()) < before

    def test_replay_does_not_rejournal(self, tmp_path):
        network = _make_network_factory()()
        feed = TrafficFeed(network)
        with DurabilityManager(tmp_path) as manager:
            feed.attach_journal(manager)
            for batch in _effective_batches(network, 3, seed=5):
                feed.apply(batch)

        recovered = _make_network_factory()()
        with DurabilityManager(tmp_path) as manager:
            appended_before = manager.journal.records_appended
            manager.recover(recovered, TrafficFeed(recovered))
            assert manager.journal.records_appended == appended_before

    def test_recovery_with_no_state_is_a_clean_noop(self, tmp_path):
        network = _make_network_factory()()
        with DurabilityManager(tmp_path) as manager:
            report = manager.recover(network)
        assert report.replayed == 0 and report.snapshot_version is None
        assert report.verified
        assert report.recovered_version == network.cost_version

    def test_recovery_skips_records_below_snapshot(self, tmp_path):
        network = _make_network_factory()()
        feed = TrafficFeed(network)
        with DurabilityManager(tmp_path) as manager:
            feed.attach_journal(manager)
            batches = _effective_batches(network, 4, seed=9)
            for batch in batches[:3]:
                feed.apply(batch)
            manager.snapshot(network)
            # One extra pre-snapshot record survives pruning because it
            # shares the active segment with the post-snapshot tail.
            feed.apply(batches[3])

        recovered = _make_network_factory()()
        with DurabilityManager(tmp_path) as manager:
            report = manager.recover(recovered, TrafficFeed(recovered))
        assert report.gap is False
        assert report.replayed >= 1
        assert recovered.cost_version == network.cost_version

    def test_verification_failure_raises_recovery_error(self, tmp_path):
        network = _make_network_factory()()
        edge_count = network.compiled().topology.edge_count
        store = SnapshotStore(tmp_path / "snapshots")
        poisoned = {
            attr: np.full(edge_count, -1.0, dtype=np.float64)
            for attr in EDGE_COST_ATTRIBUTES
        }
        store.save(
            network.cost_version + 1,
            poisoned,
            topology_stamp(network.compiled().topology),
        )
        with DurabilityManager(tmp_path) as manager:
            with pytest.raises(RecoveryError):
                manager.recover(network)

    def test_coherence_check_passes_on_live_network(self):
        network = _make_network_factory()()
        sanitizer = check_cost_coherence(network)
        assert sanitizer.ok


# -------------------------------------------------------------------- #
# Kill-point chaos: crash anywhere, recover bit-identically
# -------------------------------------------------------------------- #
class TestKillPointChaos:
    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_crash_at_point_recovers_exactly(self, point, tmp_path):
        make = _make_network_factory()
        batches = _effective_batches(make(), 9, seed=17)
        result = crash_and_recover(
            make,
            batches,
            tmp_path,
            point,
            segment_max_bytes=512,
            snapshot_after=4,
        )
        assert result.crashed, f"kill point {point} never fired"
        assert result.identical, f"{point}: {result.detail}"
        assert result.report is not None and result.report.verified

    def test_matrix_runs_all_points(self, tmp_path):
        make = _make_network_factory(3, 3, seed=5)
        batches = _effective_batches(make(), 7, seed=23)
        results = run_killpoint_matrix(make, batches, tmp_path)
        assert {r.point for r in results} == set(KILL_POINTS)
        assert all(r.identical for r in results), [
            (r.point, r.detail) for r in results if not r.identical
        ]

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        point=st.sampled_from(KILL_POINTS),
        hits=st.integers(min_value=1, max_value=3),
    )
    def test_randomized_sequences_recover_exactly(
        self, seed, point, hits, tmp_path
    ):
        make = _make_network_factory(3, 3, seed=2)
        batches = _effective_batches(make(), 6, seed=seed)
        result = crash_and_recover(
            make,
            batches,
            tmp_path / f"{seed}_{point.replace('.', '_')}_{hits}",
            point,
            hits=hits,
            segment_max_bytes=384,
            snapshot_after=2,
        )
        # A later `hits` may land past the run's end (no crash) — then the
        # run degenerates to fault-free and must still match exactly.
        assert result.identical, f"{point} x{hits} seed={seed}: {result.detail}"


# -------------------------------------------------------------------- #
# Seeded disk faults (FaultInjector.disk)
# -------------------------------------------------------------------- #
class TestDiskFaults:
    def test_write_script_actions(self, tmp_path):
        disk = FaultInjector(seed=1).disk(
            write_script=["ok", "eio", "enospc", "short", "ok"]
        )
        target = tmp_path / "f.bin"
        handle = disk(str(target), "wb")
        assert handle.write(b"aaaa") == 4
        with pytest.raises(OSError) as eio:
            handle.write(b"bbbb")
        assert eio.value.errno == __import__("errno").EIO
        with pytest.raises(OSError) as enospc:
            handle.write(b"cccc")
        assert enospc.value.errno == __import__("errno").ENOSPC
        with pytest.raises(OSError):
            handle.write(b"dddd")  # short: seeded prefix buffered, then EIO
        handle.write(b"eeee")
        handle.close()
        counters = disk.write_counters
        assert counters.short_writes == 1
        assert counters.disk_errors == 2
        assert counters.lost_bytes >= 1  # at least the short write's cut

    def test_crash_before_fsync_loses_buffered_bytes(self, tmp_path):
        disk = FaultInjector(seed=2).disk(flush_script=["crash-before-fsync"])
        target = tmp_path / "f.bin"
        handle = disk(str(target), "wb")
        handle.write(b"doomed")
        with pytest.raises(SimulatedCrash):
            handle.flush()
        handle.inner.close()  # simulate process death without close()
        assert target.read_bytes() == b""
        assert disk.flush_counters.lost_bytes == 6

    def test_crash_after_fsync_keeps_the_bytes(self, tmp_path):
        disk = FaultInjector(seed=3).disk(flush_script=["crash-after-fsync"])
        target = tmp_path / "f.bin"
        handle = disk(str(target), "wb")
        handle.write(b"durable")
        with pytest.raises(SimulatedCrash):
            handle.flush()
        handle.inner.close()
        assert target.read_bytes() == b"durable"

    def test_seeded_schedules_replay_identically(self, tmp_path):
        def run(sub: str) -> tuple[bytes, int, int]:
            disk = FaultInjector(seed=99).disk(short_rate=0.3, eio_rate=0.2)
            target = tmp_path / sub
            handle = disk(str(target), "wb")
            written = errors = 0
            for index in range(40):
                try:
                    handle.write(bytes([index]) * 8)
                    written += 1
                except OSError:
                    errors += 1
            handle.close()
            return target.read_bytes(), written, errors

        assert run("a.bin") == run("b.bin")

    def test_journal_survives_transient_write_faults(self, tmp_path):
        # One frame write per append: record 1 lands, record 2's write
        # fails with EIO — the failed append must not corrupt the log.
        disk = FaultInjector(seed=5).disk(write_script=["ok", "eio", "ok"])
        journal = DiskJournal(tmp_path, opener=disk, fsync="never")
        try:
            journal.append(_record(1))
            with pytest.raises(OSError):
                journal.append(_record(2))
        finally:
            journal.close()
        reopened = DiskJournal(tmp_path)
        try:
            scan = reopened.read_records()
            assert [r.base_version for r in scan.records] == [1]
        finally:
            reopened.close()

    def test_crash_before_fsync_drops_unacked_journal_suffix(self, tmp_path):
        # With the faulty page cache, bytes not yet fsynced die with the
        # crash: recovery sees only the records whose fsync completed.
        disk = FaultInjector(seed=6).disk(
            flush_script=["ok", "ok", "crash-before-fsync"]
        )
        journal = DiskJournal(tmp_path, opener=disk, fsync="always")
        journal.append(_record(1))
        journal.append(_record(2))
        with pytest.raises(SimulatedCrash):
            journal.append(_record(3))
        # Abandon the handle (process death), reopen with a clean opener.
        reopened = DiskJournal(tmp_path)
        try:
            scan = reopened.read_records()
            assert [r.base_version for r in scan.records] == [1, 2]
        finally:
            reopened.close()

    def test_invalid_script_action_is_rejected(self):
        injector = FaultInjector(seed=1)
        with pytest.raises(ValueError):
            injector.disk(write_script=["ok", "explode"])
        with pytest.raises(ValueError):
            injector.disk(flush_script=["short"])  # a write action, not flush


# -------------------------------------------------------------------- #
# CostDiffJournal disk tail
# -------------------------------------------------------------------- #
def _diff(version: int) -> CostDiff:
    return CostDiff(
        version=version,
        base_version=version - 1,
        changes=(((0, 1), (("travel_time_s", float(version)),)),),
    )


class TestCostDiffDiskTail:
    def test_chain_falls_back_to_disk_past_ring_capacity(self, tmp_path):
        with DurabilityManager(tmp_path) as manager:
            journal = CostDiffJournal(capacity=2, durability=manager)
            for version in range(1, 7):
                journal.append(_diff(version))
            # Ring holds [5, 6]; versions 1-4 are only on disk.
            chain = journal.chain(0)
            assert chain is not None
            assert [d.version for d in chain] == [1, 2, 3, 4, 5, 6]
            assert journal.disk_chains == 1

    def test_ring_answers_without_touching_disk(self, tmp_path):
        with DurabilityManager(tmp_path) as manager:
            journal = CostDiffJournal(capacity=8, durability=manager)
            for version in range(1, 5):
                journal.append(_diff(version))
            chain = journal.chain(2)
            assert [d.version for d in chain] == [3, 4]
            assert journal.disk_chains == 0

    def test_clear_drops_ring_but_disk_tail_still_serves(self, tmp_path):
        with DurabilityManager(tmp_path) as manager:
            journal = CostDiffJournal(capacity=8, durability=manager)
            for version in range(1, 4):
                journal.append(_diff(version))
            journal.clear()
            chain = journal.chain(0)
            assert chain is not None
            assert [d.version for d in chain] == [1, 2, 3]

    def test_without_durability_chain_is_bounded_by_ring(self):
        journal = CostDiffJournal(capacity=2)
        for version in range(1, 6):
            journal.append(_diff(version))
        assert journal.chain(0) is None  # history evicted, no disk tail


# -------------------------------------------------------------------- #
# RoutingService.recover
# -------------------------------------------------------------------- #
class TestServiceRecovery:
    def test_service_recover_restores_and_invalidates_cache(self, tmp_path):
        make = _make_network_factory()
        batches = _effective_batches(make(), 4, seed=31)
        reference = reference_state(make, batches)

        network = make()
        feed = TrafficFeed(network)
        with DurabilityManager(tmp_path) as manager:
            feed.attach_journal(manager)
            for batch in batches:
                feed.apply(batch)

        recovered = make()
        recovered_feed = TrafficFeed(recovered)
        service = RoutingService(cache_size=8)
        with DurabilityManager(tmp_path) as manager:
            report = service.recover(manager, recovered_feed)
        assert report.verified
        assert states_identical(final_state(recovered), reference)
        stats = service.stats()
        assert stats.cost_version == recovered.cost_version


# -------------------------------------------------------------------- #
# Sharded coordinator restart
# -------------------------------------------------------------------- #
class TestShardedRecovery:
    def test_coordinator_restart_recovers_and_resyncs_workers(self, tmp_path):
        import math

        from repro.routing import fastest_path
        from repro.service import RouteRequest, ShardedRoutingService
        from repro.service.sharding.overlay import path_cost
        from repro.routing import CostFeature

        make = _make_network_factory(5, 5, seed=19)
        batches = _effective_batches(make(), 5, seed=37, size=6)
        reference = reference_state(make, batches)

        # "Crashed" run: journal through the coordinator's feed, snapshot
        # mid-way, then tear the service down without any durable handoff.
        network = make()
        manager = DurabilityManager(tmp_path, segment_max_bytes=2048)
        try:
            with ShardedRoutingService(
                network, shard_count=2, durability=manager
            ) as service:
                for index, batch in enumerate(batches):
                    result = service.apply_traffic(batch, wait=True)
                    assert result.applied
                    if index == 2:
                        service.snapshot()
        finally:
            manager.close()

        # Restart: fresh network, fresh manager over the same directory.
        recovered = make()
        manager = DurabilityManager(tmp_path)
        try:
            with ShardedRoutingService(
                recovered, shard_count=2, durability=manager
            ) as service:
                report = service.recover()
                assert report.verified
                assert states_identical(final_state(recovered), reference)

                # Workers resynced from the repatched segment: routed costs
                # match a full-network reference at the recovered state.
                rng = random.Random(41)
                ids = sorted(recovered.vertex_ids())
                requests = [
                    RouteRequest(source=rng.choice(ids), destination=rng.choice(ids))
                    for _ in range(8)
                ]
                responses = service.route_many(requests, engine="Fastest")
                for request, response in zip(requests, responses):
                    expected = path_cost(
                        recovered,
                        tuple(
                            fastest_path(
                                recovered, request.source, request.destination
                            )
                        ),
                        CostFeature.TRAVEL_TIME,
                    )
                    assert response.path is not None
                    got = path_cost(
                        recovered, tuple(response.path), CostFeature.TRAVEL_TIME
                    )
                    assert math.isclose(got, expected, rel_tol=1e-9)
        finally:
            manager.close()

    def test_recover_without_durability_manager_is_refused(self):
        from repro.exceptions import ConfigurationError
        from repro.service import ShardedRoutingService

        network = _make_network_factory(3, 3, seed=2)()
        with ShardedRoutingService(network, shard_count=2) as service:
            with pytest.raises(ConfigurationError):
                service.snapshot()
            with pytest.raises(ConfigurationError):
                service.recover()


# -------------------------------------------------------------------- #
# save_model durability regression
# -------------------------------------------------------------------- #
class TestModelPersistenceDurability:
    def test_save_fsyncs_before_publishing(self, fitted_l2r, tmp_path, monkeypatch):
        # The regression: os.replace must never run before the scratch
        # file's bytes are fsynced.  Record call order to prove the fence.
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda src, dst: (events.append("replace"), real_replace(src, dst))[1],
        )
        target = tmp_path / "model.pkl.gz"
        save_model(fitted_l2r, target)
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")
        # And the published file round-trips.
        load_model(target)

    def test_failed_save_leaves_previous_model_intact(
        self, fitted_l2r, tmp_path, monkeypatch
    ):
        target = tmp_path / "model.pkl.gz"
        save_model(fitted_l2r, target)
        good = target.read_bytes()

        def explode(fd):
            raise OSError(5, "simulated fsync failure")

        monkeypatch.setattr(os, "fsync", explode)
        from repro.service import ModelPersistenceError

        with pytest.raises(ModelPersistenceError):
            save_model(fitted_l2r, target)
        assert target.read_bytes() == good
        assert not list(tmp_path.glob("*.tmp"))
