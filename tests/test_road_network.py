"""Tests for the RoadNetwork graph, road types, and network statistics."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, NetworkError, VertexNotFoundError
from repro.network import NetworkStatistics, RoadNetwork, RoadType


@pytest.fixture()
def small_network() -> RoadNetwork:
    network = RoadNetwork(name="small")
    network.add_vertex(1, 10.00, 56.00)
    network.add_vertex(2, 10.01, 56.00)
    network.add_vertex(3, 10.01, 56.01)
    network.add_edge(1, 2, road_type=RoadType.PRIMARY, bidirectional=True)
    network.add_edge(2, 3, road_type=RoadType.RESIDENTIAL)
    return network


class TestRoadType:
    def test_from_osm_tag_known(self):
        assert RoadType.from_osm_tag("motorway") is RoadType.MOTORWAY
        assert RoadType.from_osm_tag("residential") is RoadType.RESIDENTIAL

    def test_from_osm_tag_link_variant(self):
        assert RoadType.from_osm_tag("motorway_link") is RoadType.MOTORWAY

    def test_from_osm_tag_unknown_falls_back_to_residential(self):
        assert RoadType.from_osm_tag("bridleway") is RoadType.RESIDENTIAL

    def test_is_major(self):
        assert RoadType.MOTORWAY.is_major
        assert RoadType.PRIMARY.is_major
        assert not RoadType.RESIDENTIAL.is_major

    def test_speed_decreases_with_importance(self):
        speeds = [rt.default_speed_kmh for rt in RoadType]
        assert speeds == sorted(speeds, reverse=True)

    def test_osm_tag_round_trip(self):
        for road_type in RoadType:
            assert RoadType.from_osm_tag(road_type.osm_tag) is road_type


class TestConstruction:
    def test_counts(self, small_network):
        assert small_network.vertex_count == 3
        assert small_network.edge_count == 3  # one bidirectional pair + one oneway

    def test_add_edge_with_unknown_vertex_raises(self, small_network):
        with pytest.raises(VertexNotFoundError):
            small_network.add_edge(1, 99)

    def test_self_loop_rejected(self, small_network):
        with pytest.raises(NetworkError):
            small_network.add_edge(1, 1)

    def test_derived_distance_positive(self, small_network):
        assert small_network.w_di(1, 2) > 0

    def test_travel_time_consistent_with_speed(self, small_network):
        edge = small_network.edge(1, 2)
        expected = edge.distance_m / (edge.speed_kmh / 3.6)
        assert edge.travel_time_s == pytest.approx(expected)

    def test_fuel_positive(self, small_network):
        assert small_network.w_fc(1, 2) > 0

    def test_bidirectional_creates_reverse_edge(self, small_network):
        assert small_network.has_edge(2, 1)
        assert not small_network.has_edge(3, 2)

    def test_contains(self, small_network):
        assert 1 in small_network
        assert 99 not in small_network


class TestQueries:
    def test_edge_lookup_missing_raises(self, small_network):
        with pytest.raises(EdgeNotFoundError):
            small_network.edge(3, 1)

    def test_vertex_lookup_missing_raises(self, small_network):
        with pytest.raises(VertexNotFoundError):
            small_network.vertex(99)

    def test_successors_and_predecessors(self, small_network):
        assert set(small_network.successors(2)) == {1, 3}
        assert set(small_network.predecessors(3)) == {2}

    def test_neighbors_union(self, small_network):
        assert small_network.neighbors(3) == {2}
        assert small_network.neighbors(2) == {1, 3}

    def test_incident_edges(self, small_network):
        incident = small_network.incident_edges(2)
        assert len(incident) == 3

    def test_road_type_weight(self, small_network):
        assert small_network.w_rt(1, 2) is RoadType.PRIMARY
        assert small_network.w_rt(2, 3) is RoadType.RESIDENTIAL

    def test_bounding_box_covers_vertices(self, small_network):
        box = small_network.bounding_box()
        for vertex in small_network.vertices():
            assert box.contains(vertex.lonlat)


class TestPathHelpers:
    def test_is_path(self, small_network):
        assert small_network.is_path([1, 2, 3])
        assert not small_network.is_path([1, 3])

    def test_path_costs_are_sums(self, small_network):
        distance = small_network.path_distance_m([1, 2, 3])
        assert distance == pytest.approx(small_network.w_di(1, 2) + small_network.w_di(2, 3))
        time = small_network.path_travel_time_s([1, 2, 3])
        assert time == pytest.approx(small_network.w_tt(1, 2) + small_network.w_tt(2, 3))

    def test_path_edges_missing_hop_raises(self, small_network):
        with pytest.raises(EdgeNotFoundError):
            small_network.path_edges([1, 3])


class TestConversions:
    def test_networkx_round_trip(self, small_network):
        graph = small_network.to_networkx()
        rebuilt = RoadNetwork.from_networkx(graph, name="rebuilt")
        assert rebuilt.vertex_count == small_network.vertex_count
        assert rebuilt.edge_count == small_network.edge_count
        assert rebuilt.w_rt(1, 2) is RoadType.PRIMARY
        assert rebuilt.w_di(1, 2) == pytest.approx(small_network.w_di(1, 2))

    def test_statistics(self, small_network):
        stats = NetworkStatistics.of(small_network)
        assert stats.vertex_count == 3
        assert stats.edge_count == 3
        assert stats.total_length_km > 0
        assert stats.road_type_counts[RoadType.PRIMARY] == 2


class TestGeneratedNetworks:
    def test_demo_network_shape(self, demo_network):
        assert demo_network.vertex_count == 36
        assert demo_network.edge_count > 100  # bidirectional grid edges

    def test_grid_network_has_multiple_road_types(self, grid_network):
        types = {edge.road_type for edge in grid_network.edges()}
        assert RoadType.RESIDENTIAL in types
        assert any(t.is_major for t in types)

    def test_grid_network_strongly_connected_enough(self, grid_network):
        # Every vertex must have at least one outgoing and one incoming edge.
        for vertex in grid_network.vertex_ids():
            assert grid_network.successors(vertex)
            assert grid_network.predecessors(vertex)

    def test_generator_is_deterministic(self):
        from repro.network import grid_city_network

        a = grid_city_network(rows=5, cols=5, seed=13)
        b = grid_city_network(rows=5, cols=5, seed=13)
        assert a.vertex_count == b.vertex_count
        coords_a = [v.lonlat for v in a.vertices()]
        coords_b = [v.lonlat for v in b.vertices()]
        assert coords_a == coords_b

    def test_country_network_contains_motorway_corridor(self):
        from repro.network import denmark_like_network

        network = denmark_like_network(seed=2)
        motorway_edges = [e for e in network.edges() if e.road_type is RoadType.MOTORWAY]
        assert motorway_edges
        assert network.vertex_count > 200
