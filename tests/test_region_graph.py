"""Tests for region-graph construction: T-edges, B-edges, transfer centers."""

from __future__ import annotations

import pytest

from repro.exceptions import RegionGraphError
from repro.network import RoadType
from repro.regions import Region, RegionGraph, TrajectoryGraph, build_region_graph, cluster_trajectory_graph
from repro.routing import Path
from repro.trajectories import MatchedTrajectory


def _matched(trajectory_id: int, vertices: list[int]) -> MatchedTrajectory:
    return MatchedTrajectory(
        trajectory_id=trajectory_id,
        driver_id=0,
        path=Path.of(vertices),
        departure_time=0.0,
        duration_s=60.0,
    )


@pytest.fixture()
def manual_region_graph(grid_network):
    """A region graph with hand-picked regions on the 10x10 grid.

    Region 0 = top-left 2x2 block, region 1 = vertices 4-5/14-15, region 2 =
    bottom-right 2x2 block (far away, not trajectory-connected).
    """
    regions = [
        Region(region_id=0, vertices=frozenset({0, 1, 10, 11})),
        Region(region_id=1, vertices=frozenset({4, 5, 14, 15})),
        Region(region_id=2, vertices=frozenset({88, 89, 98, 99})),
    ]
    graph = RegionGraph(grid_network, regions)
    # One trajectory from region 0 through the gap to region 1.
    graph.add_trajectory(_matched(0, [0, 1, 2, 3, 4, 5]))
    graph.add_trajectory(_matched(1, [11, 1, 2, 3, 4]))
    return graph


class TestRegionGraphBasics:
    def test_region_of(self, manual_region_graph):
        assert manual_region_graph.region_of(0) == 0
        assert manual_region_graph.region_of(4) == 1
        assert manual_region_graph.region_of(50) is None

    def test_unknown_region_raises(self, manual_region_graph):
        with pytest.raises(RegionGraphError):
            manual_region_graph.region(99)

    def test_unknown_edge_raises(self, manual_region_graph):
        with pytest.raises(RegionGraphError):
            manual_region_graph.edge(0, 2)

    def test_t_edge_created_with_path(self, manual_region_graph):
        edge = manual_region_graph.edge(0, 1)
        assert edge.is_t_edge
        assert edge.popularity == 2
        popular = edge.most_popular_path()
        assert popular is not None
        assert popular.source in (1, 11)
        assert popular.destination == 4

    def test_transfer_centers_recorded(self, manual_region_graph):
        centers_0 = manual_region_graph.transfer_centers(0)
        centers_1 = manual_region_graph.transfer_centers(1)
        assert 1 in centers_0 or 11 in centers_0
        assert 4 in centers_1

    def test_inner_paths_recorded(self, manual_region_graph):
        inner = manual_region_graph.inner_paths(0)
        assert any(path.vertices == (0, 1) for path, _ in inner) or any(
            path.vertices == (11, 1) for path, _ in inner
        )

    def test_region_without_trajectories_has_vertex_fallback_centers(self, manual_region_graph):
        centers = manual_region_graph.transfer_centers(2)
        assert centers == {88, 89, 98, 99}

    def test_centroid_distance_positive(self, manual_region_graph):
        assert manual_region_graph.centroid_distance_m(0, 2) > 0

    def test_edge_functionality_is_cartesian_product(self, manual_region_graph):
        edge = manual_region_graph.edge(0, 1)
        assert edge.functionality
        assert all(isinstance(a, RoadType) and isinstance(b, RoadType) for a, b in edge.functionality)


class TestBFSConnection:
    def test_bfs_connects_isolated_region(self, manual_region_graph):
        assert not manual_region_graph.is_connected()
        added = manual_region_graph.connect_with_bfs()
        assert added >= 1
        assert manual_region_graph.is_connected()

    def test_b_edges_have_no_paths_initially(self, manual_region_graph):
        manual_region_graph.connect_with_bfs()
        for edge in manual_region_graph.b_edges():
            assert edge.most_popular_path() is None

    def test_bfs_does_not_duplicate_existing_t_edges(self, manual_region_graph):
        before = len(manual_region_graph.t_edges())
        manual_region_graph.connect_with_bfs()
        assert len(manual_region_graph.t_edges()) == before


class TestBuildRegionGraph:
    def test_full_build_is_connected(self, tiny_region_graph):
        assert tiny_region_graph.is_connected()
        assert tiny_region_graph.region_count > 1
        assert tiny_region_graph.t_edges()

    def test_every_covered_vertex_in_some_region(self, tiny, tiny_split, tiny_region_graph):
        graph = TrajectoryGraph.from_trajectories(tiny.network, tiny_split.train)
        for vertex in graph.covered_vertices():
            assert tiny_region_graph.region_of(vertex) is not None

    def test_t_edge_paths_are_valid_network_paths(self, tiny, tiny_region_graph):
        for edge in tiny_region_graph.t_edges()[:25]:
            for path in edge.paths()[:3]:
                assert path.is_valid(tiny.network)

    def test_statistics_keys(self, tiny_region_graph):
        stats = tiny_region_graph.statistics()
        assert {"regions", "t_edges", "b_edges", "mean_region_size", "connected"} <= set(stats)
        assert stats["connected"] == 1.0

    def test_region_pair_cap_limits_edges(self, tiny, tiny_split):
        graph = TrajectoryGraph.from_trajectories(tiny.network, tiny_split.train)
        clustering = cluster_trajectory_graph(graph)
        capped = build_region_graph(
            tiny.network, clustering, tiny_split.train, max_region_pairs_per_trajectory=1
        )
        uncapped = build_region_graph(
            tiny.network, clustering, tiny_split.train, max_region_pairs_per_trajectory=None
        )
        assert len(capped.t_edges()) <= len(uncapped.t_edges())

    def test_undirected_edge_keys_are_canonical(self, tiny_region_graph):
        for a, b in tiny_region_graph.undirected_edge_keys():
            assert a <= b
