"""Equivalence and invalidation tests for the compiled CSR graph kernels.

The compiled kernels (:mod:`repro.network.compiled`) must be drop-in
replacements for the dict-based reference implementations: identical paths
(not merely cost-identical), identical exceptions, across random graphs, all
cost features, weighted combinations, edge filters, and unreachable pairs.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import NoPathError
from repro.network import (
    RoadNetwork,
    RoadType,
    alt_disabled,
    compiled_disabled,
    grid_city_network,
)
from repro.network.compiled import CompiledGraph, SearchWorkspace
from repro.preferences import PreferenceVector
from repro.preferences.features import MAJOR_ROADS, LOCAL_ROADS, single_type_feature
from repro.routing import (
    ALL_COST_FEATURES,
    CostFeature,
    astar,
    bidirectional_dijkstra,
    cost_function,
    dict_astar,
    dict_bidirectional_dijkstra,
    dict_dijkstra,
    dict_dijkstra_costs,
    dijkstra,
    dijkstra_costs,
    heuristic_for,
    preference_dijkstra,
    weighted_cost,
)
from repro.routing.preference_dijkstra import _dict_preference_search


# --------------------------------------------------------------------------- #
# Random-graph strategy
# --------------------------------------------------------------------------- #
@st.composite
def random_networks(draw) -> RoadNetwork:
    """Small random directed networks with mixed road types.

    Built from a drawn seed so hypothesis explores many topologies, including
    disconnected ones (unreachable pairs are part of the contract).
    """
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=2, max_value=12))
    density = draw(st.floats(min_value=0.1, max_value=0.6))
    rng = random.Random(seed)
    network = RoadNetwork(name=f"random-{seed}")
    for i in range(n):
        network.add_vertex(i, lon=10.0 + rng.random() * 0.1, lat=56.0 + rng.random() * 0.1)
    road_types = list(RoadType)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < density:
                network.add_edge(u, v, road_type=rng.choice(road_types))
    return network


def _pair(network: RoadNetwork, seed: int) -> tuple[int, int]:
    rng = random.Random(seed)
    ids = sorted(network.vertex_ids())
    return rng.choice(ids), rng.choice(ids)


def _both(fn_compiled, fn_dict):
    """Run the compiled and dict variants, normalizing NoPathError."""
    try:
        compiled_result = fn_compiled()
    except NoPathError:
        compiled_result = "no-path"
    try:
        dict_result = fn_dict()
    except NoPathError:
        dict_result = "no-path"
    return compiled_result, dict_result


HYPOTHESIS_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestDijkstraEquivalence:
    @HYPOTHESIS_SETTINGS
    @given(random_networks(), st.integers(min_value=0, max_value=1_000))
    def test_all_cost_features(self, network, pair_seed):
        source, destination = _pair(network, pair_seed)
        for feature in ALL_COST_FEATURES:
            cost = cost_function(feature)
            compiled_path, dict_path = _both(
                lambda: dijkstra(network, source, destination, cost),
                lambda: dict_dijkstra(network, source, destination, cost),
            )
            if compiled_path == "no-path":
                assert dict_path == "no-path"
            else:
                assert compiled_path.vertices == dict_path.vertices

    @HYPOTHESIS_SETTINGS
    @given(
        random_networks(),
        st.integers(min_value=0, max_value=1_000),
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=5.0),
    )
    def test_weighted_combination(self, network, pair_seed, w_distance, w_time):
        source, destination = _pair(network, pair_seed)
        cost = weighted_cost(
            {
                CostFeature.DISTANCE: w_distance,
                CostFeature.TRAVEL_TIME: w_time,
                CostFeature.FUEL: 1.0,
            }
        )
        compiled_path, dict_path = _both(
            lambda: dijkstra(network, source, destination, cost),
            lambda: dict_dijkstra(network, source, destination, cost),
        )
        if compiled_path == "no-path":
            assert dict_path == "no-path"
        else:
            assert compiled_path.vertices == dict_path.vertices

    @HYPOTHESIS_SETTINGS
    @given(random_networks(), st.integers(min_value=0, max_value=1_000))
    def test_edge_filter(self, network, pair_seed):
        source, destination = _pair(network, pair_seed)
        cost = cost_function(CostFeature.DISTANCE)

        def no_motorways(edge):
            return edge.road_type is not RoadType.MOTORWAY

        compiled_path, dict_path = _both(
            lambda: dijkstra(network, source, destination, cost, edge_filter=no_motorways),
            lambda: dict_dijkstra(network, source, destination, cost, edge_filter=no_motorways),
        )
        if compiled_path == "no-path":
            assert dict_path == "no-path"
        else:
            assert compiled_path.vertices == dict_path.vertices
            assert all(
                network.edge(u, v).road_type is not RoadType.MOTORWAY
                for u, v in compiled_path.edge_keys
            )

    @HYPOTHESIS_SETTINGS
    @given(random_networks(), st.integers(min_value=0, max_value=1_000))
    def test_dijkstra_costs(self, network, pair_seed):
        source, _ = _pair(network, pair_seed)
        cost = cost_function(CostFeature.TRAVEL_TIME)
        assert dijkstra_costs(network, source, cost) == dict_dijkstra_costs(
            network, source, cost
        )

    @HYPOTHESIS_SETTINGS
    @given(random_networks(), st.integers(min_value=0, max_value=1_000))
    def test_dijkstra_costs_with_targets(self, network, pair_seed):
        source, target = _pair(network, pair_seed)
        targets = [target, source]
        cost = cost_function(CostFeature.DISTANCE)
        assert dijkstra_costs(network, source, cost, targets=targets) == (
            dict_dijkstra_costs(network, source, cost, targets=targets)
        )

    def test_opaque_cost_falls_back_to_dict(self, demo_network):
        """Un-tagged callables still work (dict fallback) and agree."""

        def quirky(edge):
            return edge.distance_m + 7.0

        path = dijkstra(demo_network, 0, 35, quirky)
        reference = dict_dijkstra(demo_network, 0, 35, quirky)
        assert path.vertices == reference.vertices


class TestOtherKernels:
    @HYPOTHESIS_SETTINGS
    @given(random_networks(), st.integers(min_value=0, max_value=1_000))
    def test_astar(self, network, pair_seed):
        # Path *identity* holds for the plain (non-ALT) kernel, which mirrors
        # the reference relaxation order exactly; goal-directed ALT answers
        # are cost-identical and covered by tests/test_alt_landmarks.py.
        source, destination = _pair(network, pair_seed)
        for feature in ALL_COST_FEATURES:
            cost = cost_function(feature)
            heuristic = heuristic_for(network, destination, feature)
            with alt_disabled():
                compiled_path, dict_path = _both(
                    lambda: astar(network, source, destination, cost, heuristic),
                    lambda: dict_astar(network, source, destination, cost, heuristic),
                )
            if compiled_path == "no-path":
                assert dict_path == "no-path"
            else:
                assert compiled_path.vertices == dict_path.vertices

    @HYPOTHESIS_SETTINGS
    @given(random_networks(), st.integers(min_value=0, max_value=1_000))
    def test_bidirectional(self, network, pair_seed):
        source, destination = _pair(network, pair_seed)
        cost = cost_function(CostFeature.TRAVEL_TIME)
        with alt_disabled():
            compiled_path, dict_path = _both(
                lambda: bidirectional_dijkstra(network, source, destination, cost),
                lambda: dict_bidirectional_dijkstra(network, source, destination, cost),
            )
        if compiled_path == "no-path":
            assert dict_path == "no-path"
        else:
            assert compiled_path.vertices == dict_path.vertices

    @HYPOTHESIS_SETTINGS
    @given(random_networks(), st.integers(min_value=0, max_value=1_000), st.integers(0, 7))
    def test_preference_dijkstra(self, network, pair_seed, slave_index):
        source, destination = _pair(network, pair_seed)
        slaves = [None, MAJOR_ROADS, LOCAL_ROADS] + [
            single_type_feature(rt) for rt in RoadType
        ]
        slave = slaves[slave_index % len(slaves)]
        preference = PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=slave)
        if source == destination:
            return
        compiled_path, dict_path = _both(
            lambda: preference_dijkstra(network, source, destination, preference),
            lambda: _dict_preference_search(network, source, destination, preference),
        )
        if compiled_path == "no-path":
            assert dict_path == "no-path"
        else:
            assert compiled_path.vertices == dict_path.vertices

    def test_reentrant_search_inside_heuristic(self):
        """A heuristic that routes on the same network must not corrupt the
        outer search's workspace (nested searches borrow their own)."""
        network = grid_city_network(rows=8, cols=8, seed=3)
        cost = cost_function(CostFeature.TRAVEL_TIME)
        plain_heuristic = heuristic_for(network, 63, CostFeature.TRAVEL_TIME)

        def nosy_heuristic(vertex):
            dijkstra_costs(network, vertex, cost, targets=[63])  # nested search
            return plain_heuristic(vertex)

        for source in (0, 7, 56, 27):
            nested = astar(network, source, 63, cost, nosy_heuristic)
            reference = dict_astar(network, source, 63, cost, plain_heuristic)
            assert nested.vertices == reference.vertices

    def test_workspace_reuse_is_stateless(self, grid_network):
        """Interleaved queries on the shared workspace stay reproducible."""
        cost = cost_function(CostFeature.TRAVEL_TIME)
        rng = random.Random(4)
        ids = sorted(grid_network.vertex_ids())
        pairs = [(rng.choice(ids), rng.choice(ids)) for _ in range(25)]
        first = [dijkstra(grid_network, a, b, cost).vertices for a, b in pairs]
        second = [dijkstra(grid_network, a, b, cost).vertices for a, b in pairs]
        with compiled_disabled():
            reference = [dijkstra(grid_network, a, b, cost).vertices for a, b in pairs]
        assert first == second == reference


class TestCompiledView:
    def test_lazy_and_cached(self, demo_network):
        view = demo_network.compiled()
        assert view is demo_network.compiled()
        assert isinstance(view, CompiledGraph)
        assert view.vertex_count == demo_network.vertex_count
        assert view.edge_count == demo_network.edge_count

    def test_mutation_during_compilation_serves_uncached_snapshot(self, monkeypatch):
        """A topology mutation racing a compile must not poison the cache.

        The builder thread is paused *after* the CSR snapshot is built but
        before ``compiled()`` decides whether to cache it; a concurrent
        ``add_edge`` then invalidates it.  The stale snapshot is served to
        the builder uncached, and the next accessor gets a fresh, correct
        one (previously only the comment in ``road_network.py`` promised
        this).
        """
        import threading

        from repro.network.compiled import graph as graph_module

        network = grid_city_network(rows=5, cols=5, seed=2)
        original_init = graph_module.CompiledGraph.__init__
        build_done = threading.Event()
        mutated = threading.Event()
        first_build = []

        def racy_init(self, net, *args, **kwargs):
            original_init(self, net, *args, **kwargs)
            if not first_build:
                first_build.append(True)
                build_done.set()
                assert mutated.wait(timeout=10.0)

        monkeypatch.setattr(graph_module.CompiledGraph, "__init__", racy_init)
        results = {}
        builder = threading.Thread(target=lambda: results.update(view=network.compiled()))
        builder.start()
        assert build_done.wait(timeout=10.0)
        network.add_edge(0, 6, road_type=RoadType.MOTORWAY)  # mid-build mutation
        mutated.set()
        builder.join(timeout=10.0)
        assert not builder.is_alive()

        stale = results["view"]
        assert stale.slot(0, 6) is None  # predates the mutation
        assert network._compiled is None  # ... and was not cached
        fresh = network.compiled()
        assert fresh is not stale
        assert fresh.slot(0, 6) is not None
        assert fresh.edge_count == network.edge_count
        assert network.compiled() is fresh  # the fresh snapshot is cached
        path = dijkstra(network, 0, 6, cost_function(CostFeature.DISTANCE))
        assert path.vertices == (0, 6)

    def test_cost_update_blocks_until_concurrent_build_caches(self):
        """update_edge_costs serializes with compiled() builds on the same
        lock, so a patch can never land in the middle of a build: the build
        caches first, then the patch updates the cached snapshot."""
        import threading

        network = grid_city_network(rows=6, cols=6, seed=3)
        errors = []

        def hammer_costs():
            try:
                for i in range(30):
                    network.update_edge_costs(
                        {(0, 1): {"travel_time_s": 10.0 + i}}
                    )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=hammer_costs) for _ in range(3)]
        for thread in threads:
            thread.start()
        views = [network.compiled() for _ in range(10)]
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert network.cost_version == 90
        final = network.compiled()
        slot = final.slot(0, 1)
        assert final.array("travel_time_s")[slot] == network.edge(0, 1).travel_time_s
        assert views  # builds interleaved with patches never crashed

    def test_mutation_invalidates_compiled_view(self):
        network = grid_city_network(rows=4, cols=4, seed=1)
        before = network.compiled()
        version = network.version
        network.add_edge(0, 5, road_type=RoadType.MOTORWAY)
        assert network.version > version
        after = network.compiled()
        assert after is not before
        assert after.edge_count == before.edge_count + 1

    def test_mutation_changes_routes(self):
        network = RoadNetwork()
        for i in range(4):
            network.add_vertex(i, lon=10.0 + i * 0.01, lat=56.0)
        for i in range(3):
            network.add_edge(i, i + 1, distance_m=1_000.0)
        long_way = dijkstra(network, 0, 3, cost_function(CostFeature.DISTANCE))
        assert long_way.vertices == (0, 1, 2, 3)
        network.add_edge(0, 3, distance_m=10.0)  # drops the compiled view
        direct = dijkstra(network, 0, 3, cost_function(CostFeature.DISTANCE))
        assert direct.vertices == (0, 3)

    def test_add_vertex_invalidates_bounding_box(self):
        network = RoadNetwork()
        network.add_vertex(0, lon=10.0, lat=56.0)
        network.add_vertex(1, lon=10.1, lat=56.1)
        box = network.bounding_box()
        assert box is network.bounding_box()  # cached
        network.add_vertex(2, lon=11.0, lat=57.0)
        grown = network.bounding_box()
        assert grown.max_lon == pytest.approx(11.0)
        assert grown.max_lat == pytest.approx(57.0)

    def test_workspace_sized_to_graph(self, demo_network):
        view = demo_network.compiled()
        workspace = view.workspace()
        assert isinstance(workspace, SearchWorkspace)
        assert workspace.size == view.vertex_count
        # Pooled workspaces are reused per thread once released...
        with view.borrowed_workspace() as first:
            pass
        with view.borrowed_workspace() as second:
            assert second is first
        # ... but nested borrows get their own instance.
        with view.borrowed_workspace() as outer:
            with view.borrowed_workspace() as inner:
                assert inner is not outer

    def test_unpickles_pre_slots_states(self):
        """Models persisted before Vertex/Edge gained slots still load."""
        from repro.network import Edge, Vertex

        vertex = Vertex.__new__(Vertex)
        vertex.__setstate__({"vertex_id": 7, "lon": 10.5, "lat": 56.25})
        assert vertex == Vertex(vertex_id=7, lon=10.5, lat=56.25)

        edge = Edge.__new__(Edge)
        edge.__setstate__(
            {
                "source": 1,
                "target": 2,
                "distance_m": 100.0,
                "travel_time_s": 9.0,
                "fuel_ml": 8.0,
                "road_type": RoadType.PRIMARY,
                "speed_kmh": 40.0,
            }
        )
        assert edge.key == (1, 2)
        assert edge.road_type is RoadType.PRIMARY
        # Current-format pickles still round-trip through the compat path.
        assert pickle.loads(pickle.dumps(vertex)) == vertex
        assert pickle.loads(pickle.dumps(edge)) == edge

    def test_memo_cache_is_bounded(self, demo_network):
        view = demo_network.compiled()
        store = view.costs
        for i in range(store._memo_size + 50):
            view.memo(("stress", i), lambda: object())
        assert len(store._memo) <= store._memo_size

    def test_pickle_drops_compiled_view(self, demo_network):
        demo_network.compiled()
        clone = pickle.loads(pickle.dumps(demo_network))
        assert clone._compiled is None
        assert clone.vertex_count == demo_network.vertex_count
        # ... and rebuilds on demand with identical structure.
        assert clone.compiled().edge_count == demo_network.compiled().edge_count

    def test_iter_neighbors_matches_neighbors(self, demo_network):
        for vertex in demo_network.vertex_ids():
            lazy = list(demo_network.iter_neighbors(vertex))
            assert len(lazy) == len(set(lazy))  # no duplicates
            assert set(lazy) == demo_network.neighbors(vertex)

    def test_iter_incident_edges_matches_incident_edges(self, demo_network):
        for vertex in demo_network.vertex_ids():
            assert list(demo_network.iter_incident_edges(vertex)) == (
                demo_network.incident_edges(vertex)
            )


class TestPipelineEquivalence:
    """The acceptance bar: identical routes through the full stack."""

    def test_l2r_and_baselines_identical_routes(self, tiny, tiny_split, fitted_l2r):
        from repro.baselines import (
            DomBaseline,
            FastestBaseline,
            PopularRouteBaseline,
            ShortestBaseline,
            TripBaseline,
        )

        network = tiny.network
        algorithms = [
            fitted_l2r,
            ShortestBaseline(network),
            FastestBaseline(network),
            DomBaseline(network, tiny_split.train, max_trajectories_per_driver=4),
            TripBaseline(network, tiny_split.train),
            PopularRouteBaseline(network, tiny_split.train),
        ]
        rng = random.Random(11)
        ids = sorted(network.vertex_ids())
        queries = [(rng.choice(ids), rng.choice(ids)) for _ in range(12)]

        def run_all():
            routes = {}
            for algorithm in algorithms:
                for source, destination in queries:
                    try:
                        path = algorithm.route(source, destination)
                        routes[(type(algorithm).__name__, source, destination)] = path.vertices
                    except NoPathError:
                        routes[(type(algorithm).__name__, source, destination)] = "no-path"
            return routes

        compiled_routes = run_all()
        with compiled_disabled():
            dict_routes = run_all()
        assert compiled_routes == dict_routes
