"""ALT landmark bounds, batched SSSP, and the goal-directed service plumbing.

Property-based contracts:

* landmark lower bounds are admissible (never exceed true distances) on
  randomized grids — including after randomized ``TrafficUpdate`` sequences
  that move costs both up and down (the table rescales or rebuilds);
* goal-directed ALT-A* and ALT-bidirectional answers are cost-identical to
  the dict-based reference Dijkstra;
* ``dijkstra_many`` (and the batched ``route_many``) produce results
  identical to per-query compiled Dijkstra;
* contraction hierarchies detect staleness instead of silently answering
  with pre-update costs.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import NoPathError, StaleHierarchyError
from repro.network import alt_disabled, grid_city_network
from repro.network.compiled import batch as compiled_batch
from repro.network.compiled import dispatch as compiled_dispatch
from repro.network.compiled.landmarks import REBUILD_RATIO
from repro.routing import (
    CostFeature,
    astar,
    bidirectional_dijkstra,
    build_contraction_hierarchy,
    ch_shortest_path,
    cost_function,
    dict_dijkstra,
    dict_dijkstra_costs,
    dijkstra,
)
from repro.service import AlgorithmEngine, RouteRequest, RoutingService
from repro.baselines import FastestBaseline, ShortestBaseline
from repro.traffic import TrafficFeed, TrafficUpdate

HYPOTHESIS_SETTINGS = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

COST = cost_function(CostFeature.TRAVEL_TIME)


def _grid(seed: int, rows: int = 6, cols: int = 6):
    return grid_city_network(rows=rows, cols=cols, seed=seed)


def _resolved(network, cost=COST):
    graph = network.compiled()
    key, array, version = graph.resolve_cost(cost)
    return graph, key, array, version


def _true_costs_from(network, source):
    return dict_dijkstra_costs(network, source, COST)


def _assert_admissible(network, table, sample_targets):
    graph = network.compiled()
    ids = sorted(network.vertex_ids())
    for target in sample_targets:
        bounds = table.bounds_to(graph.index_of[target])
        for source in ids:
            true = _true_costs_from(network, source).get(target, math.inf)
            bound = bounds[graph.index_of[source]]
            assert bound <= true + 1e-6 * max(1.0, abs(true)) or (
                math.isinf(bound) and math.isinf(true)
            ), f"bound {bound} exceeds true distance {true} for {source}->{target}"


def _path_cost(network, path):
    return sum(e.travel_time_s for e in network.path_edges(path.vertices))


class TestAdmissibility:
    @HYPOTHESIS_SETTINGS
    @given(st.integers(min_value=0, max_value=500))
    def test_bounds_are_admissible_on_random_grids(self, seed):
        network = _grid(seed)
        table = network.prepare_landmarks(count=4)
        assert table is not None
        rng = random.Random(seed)
        ids = sorted(network.vertex_ids())
        _assert_admissible(network, table, rng.sample(ids, 3))

    @HYPOTHESIS_SETTINGS
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=4))
    def test_bounds_stay_admissible_after_traffic_updates(self, seed, batches):
        """Random up/down cost moves: the table rescales and stays a bound."""
        network = _grid(seed)
        table = network.prepare_landmarks(count=4)
        feed = TrafficFeed(network)
        rng = random.Random(seed + 99)
        edges = list(network.edges())
        for _ in range(batches):
            touched = rng.sample(edges, min(6, len(edges)))
            feed.apply(
                TrafficUpdate.scale_by(
                    e.source, e.target, travel_time_s=rng.uniform(0.6, 3.0)
                )
                for e in touched
            )
        graph, key, array, version = _resolved(network)
        table = graph.landmark_table(key, array, version)
        assert table is not None
        ids = sorted(network.vertex_ids())
        _assert_admissible(network, table, rng.sample(ids, 3))

    def test_table_rescales_on_cost_decrease_and_rebuilds_past_ratio(self):
        network = _grid(11)
        table = network.prepare_landmarks(count=4)
        assert table.scale == 1.0
        feed = TrafficFeed(network)
        edge = next(network.edges())
        # A mild decrease rescales the same table object.
        feed.apply([TrafficUpdate.scale_by(edge.source, edge.target, travel_time_s=0.8)])
        graph, key, array, version = _resolved(network)
        revalidated = graph.landmark_table(key, array, version)
        # Copy-on-write: the served table is never mutated — a twin sharing
        # the distance matrices carries the new scale (no rebuild).
        assert revalidated is not table
        assert revalidated.dist_from is table.dist_from
        assert revalidated.dist_to is table.dist_to
        assert table.scale == 1.0
        assert revalidated.scale == pytest.approx(0.8)
        # A collapse below REBUILD_RATIO evicts and rebuilds at scale 1.
        feed.apply(
            [
                TrafficUpdate.scale_by(
                    edge.source, edge.target, travel_time_s=REBUILD_RATIO / 2
                )
            ]
        )
        graph, key, array, version = _resolved(network)
        rebuilt = graph.landmark_table(key, array, version)
        assert rebuilt is not table
        assert rebuilt.scale == 1.0

    def test_rebuild_preserves_operator_configuration(self):
        network = _grid(13)
        tuned = network.prepare_landmarks(count=6, strategy="avoid")
        assert tuned.count == 6 and tuned.strategy == "avoid"
        feed = TrafficFeed(network)
        edge = next(network.edges())
        feed.apply(
            [
                TrafficUpdate.scale_by(
                    edge.source, edge.target, travel_time_s=REBUILD_RATIO / 3
                )
            ]
        )
        # Plain query-path access (no explicit config) triggers the rebuild:
        # the tuned count/strategy must survive the self-eviction.
        graph, key, array, version = _resolved(network)
        rebuilt = graph.landmark_table(key, array, version)
        assert rebuilt is not tuned
        assert rebuilt.count == 6 and rebuilt.strategy == "avoid"
        assert rebuilt.scale == 1.0

    def test_increases_keep_buildtime_bounds_unscaled(self):
        network = _grid(12)
        table = network.prepare_landmarks(count=4)
        feed = TrafficFeed(network)
        edge = next(network.edges())
        feed.apply([TrafficUpdate.scale_by(edge.source, edge.target, travel_time_s=2.5)])
        graph, key, array, version = _resolved(network)
        assert graph.landmark_table(key, array, version) is table
        assert table.scale == 1.0


class TestGoalDirectedCostIdentity:
    @HYPOTHESIS_SETTINGS
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=1000))
    def test_alt_astar_matches_reference_dijkstra_cost(self, seed, pair_seed):
        network = _grid(seed)
        rng = random.Random(pair_seed)
        ids = sorted(network.vertex_ids())
        source, destination = rng.sample(ids, 2)
        reference = dict_dijkstra(network, source, destination, COST)
        alt_path = astar(network, source, destination, COST)  # ALT by default
        assert network.is_path(alt_path.vertices)
        assert _path_cost(network, alt_path) == pytest.approx(
            _path_cost(network, reference), rel=1e-9
        )
        bidi = bidirectional_dijkstra(network, source, destination, COST)
        assert network.is_path(bidi.vertices)
        assert _path_cost(network, bidi) == pytest.approx(
            _path_cost(network, reference), rel=1e-9
        )

    @HYPOTHESIS_SETTINGS
    @given(st.integers(min_value=0, max_value=300))
    def test_alt_astar_cost_identity_survives_traffic(self, seed):
        network = _grid(seed)
        network.prepare_landmarks(count=4)
        feed = TrafficFeed(network)
        rng = random.Random(seed)
        edges = list(network.edges())
        feed.apply(
            TrafficUpdate.scale_by(e.source, e.target, travel_time_s=rng.uniform(0.7, 2.5))
            for e in rng.sample(edges, min(8, len(edges)))
        )
        ids = sorted(network.vertex_ids())
        for _ in range(4):
            source, destination = rng.sample(ids, 2)
            reference = dict_dijkstra(network, source, destination, COST)
            alt_path = astar(network, source, destination, COST)
            assert _path_cost(network, alt_path) == pytest.approx(
                _path_cost(network, reference), rel=1e-9
            )

    def test_unreachable_raises_with_alt(self):
        network = _grid(5)
        isolated = max(network.vertex_ids()) + 1
        network.add_vertex(isolated, lon=0.0, lat=0.0)
        with pytest.raises(NoPathError):
            astar(network, sorted(network.vertex_ids())[0], isolated, COST)

    def test_selection_survives_sink_at_lowest_index(self):
        """A sink vertex at compiled index 0 must not collapse selection."""
        network = _grid(22)
        lowest = min(network.vertex_ids())
        sink = lowest - 1  # sorts first -> compiled index 0, no outgoing edges
        network.add_vertex(sink, lon=10.0, lat=56.0)
        network.add_edge(lowest, sink)  # reachable, but a dead end
        table = network.prepare_landmarks(count=4)
        assert table.count == 4
        # Repeated explicit-count preparation reuses the cached table even
        # when selection could not satisfy the request exactly.
        assert network.prepare_landmarks(count=4) is table

    def test_repeated_prepare_with_capped_count_does_not_rebuild(self):
        network = _grid(23, rows=2, cols=2)  # 4 vertices: count=9 is capped
        table = network.prepare_landmarks(count=9)
        assert table.count <= 4
        assert network.prepare_landmarks(count=9) is table

    def test_strategies_all_admissible(self):
        network = _grid(21)
        rng = random.Random(3)
        ids = sorted(network.vertex_ids())
        for strategy in ("farthest", "avoid", "random"):
            table = network.prepare_landmarks(count=4, strategy=strategy)
            assert table.strategy == strategy
            _assert_admissible(network, table, rng.sample(ids, 2))


class TestDijkstraMany:
    @HYPOTHESIS_SETTINGS
    @given(st.integers(min_value=0, max_value=500))
    def test_distances_match_reference(self, seed):
        network = _grid(seed)
        graph, key, array, version = _resolved(network)
        rng = random.Random(seed)
        ids = sorted(network.vertex_ids())
        sources = rng.sample(ids, 4)
        matrix = compiled_batch.dijkstra_many(
            graph, key, array, version, [graph.index_of[s] for s in sources]
        )
        for row, source in enumerate(sources):
            truth = _true_costs_from(network, source)
            for vid in ids:
                expected = truth.get(vid, math.inf)
                got = matrix[row, graph.index_of[vid]]
                if math.isinf(expected):
                    assert math.isinf(got)
                else:
                    assert got == pytest.approx(expected, rel=1e-12)

    @HYPOTHESIS_SETTINGS
    @given(st.integers(min_value=0, max_value=500))
    def test_batch_paths_identical_to_compiled_dijkstra(self, seed):
        network = _grid(seed)
        rng = random.Random(seed + 1)
        ids = sorted(network.vertex_ids())
        pairs = [tuple(rng.sample(ids, 2)) for _ in range(8)]
        answers = compiled_dispatch.try_route_many(network, pairs, COST)
        assert answers is not None
        for (source, destination), answer in zip(pairs, answers):
            per_query = dijkstra(network, source, destination, COST)
            assert tuple(answer) == per_query.vertices

    def test_python_fallback_matches_scipy(self, monkeypatch):
        network = _grid(9)
        graph, key, array, version = _resolved(network)
        sources = [0, 5, 17]
        with_scipy = compiled_batch.dijkstra_many(graph, key, array, version, sources)
        monkeypatch.setattr(compiled_batch.sparse, "HAVE_SCIPY", False)
        without = compiled_batch.dijkstra_many(graph, key, array, version, sources)
        assert np.array_equal(with_scipy, without)
        reverse_with = compiled_batch.dijkstra_many(
            graph, key, array, version, sources, reverse=True
        )
        monkeypatch.undo()
        assert np.array_equal(
            reverse_with,
            compiled_batch.dijkstra_many(graph, key, array, version, sources, reverse=True),
        )


class TestBatchedRouteMany:
    @pytest.fixture()
    def network(self):
        return _grid(31, rows=8, cols=8)

    @pytest.fixture()
    def service(self, network):
        service = RoutingService()
        service.register("Fastest", AlgorithmEngine(FastestBaseline(network)))
        service.register("Shortest", AlgorithmEngine(ShortestBaseline(network)))
        return service

    def _requests(self, network, count, seed=7):
        rng = random.Random(seed)
        ids = sorted(network.vertex_ids())
        return [
            RouteRequest(source=a, destination=b)
            for a, b in (rng.sample(ids, 2) for _ in range(count))
        ]

    def test_batched_answers_match_threaded(self, network, service):
        requests = self._requests(network, 40)
        batched = service.route_many(requests, engine="Fastest")
        service.clear_cache()
        threaded = service.route_many(requests, engine="Fastest", batch_min_size=10_000)
        for a, b in zip(batched, threaded):
            assert a.ok and b.ok
            assert a.path.vertices == b.path.vertices
        assert any(r.batched for r in batched)
        assert not any(r.batched for r in threaded)

    def test_batched_responses_populate_cache_and_stats(self, network, service):
        requests = self._requests(network, 24)
        first = service.route_many(requests, engine="Fastest")
        assert all(r.ok for r in first)
        again = service.route_many(requests, engine="Fastest")
        assert all(r.cache_hit for r in again)
        stats = service.stats()
        assert stats.batched_requests == sum(1 for r in first if r.batched) > 0
        assert stats.requests == len(requests) * 2
        assert stats.batched_latency_p95_s >= stats.batched_latency_p50_s >= 0.0

    def test_small_groups_stay_threaded(self, network, service):
        requests = self._requests(network, 4)
        responses = service.route_many(requests, engine="Fastest")
        assert all(r.ok for r in responses)
        assert not any(r.batched for r in responses)

    def test_unreachable_requests_fall_back_per_request(self, network, service):
        requests = self._requests(network, 12)
        isolated = max(network.vertex_ids()) + 1
        network.add_vertex(isolated, lon=0.0, lat=0.0)
        requests[3] = RouteRequest(source=requests[3].source, destination=isolated)
        responses = service.route_many(requests, engine="Fastest")
        assert not responses[3].ok
        assert responses[3].error is not None
        assert all(r.ok for i, r in enumerate(responses) if i != 3)

    def test_mixed_engines_partition_by_cost_view(self, network, service):
        requests = self._requests(network, 24)
        fastest = service.route_many(requests, engine="Fastest")
        shortest = service.route_many(requests, engine="Shortest")
        for a, b in zip(fastest, shortest):
            assert a.engine == "Fastest" and b.engine == "Shortest"

    def test_goal_directed_service_default_and_request_override(self, network):
        service = RoutingService(goal_directed=True)
        service.register("Fastest", AlgorithmEngine(FastestBaseline(network)))
        request = RouteRequest(source=0, destination=60)
        goal_response = service.route(request)
        assert goal_response.ok
        with alt_disabled():
            plain = service.route(
                RouteRequest(source=0, destination=60, goal_directed=False)
            )
        assert plain.ok
        assert _path_cost(network, goal_response.path) == pytest.approx(
            _path_cost(network, plain.path), rel=1e-9
        )


class TestHierarchyStaleness:
    def test_stale_hierarchy_raises_by_default(self):
        network = _grid(41)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        assert ch_shortest_path(network, ids[0], ids[-1], hierarchy).vertices
        edge = next(network.edges())
        network.update_edge_costs({(edge.source, edge.target): {"travel_time_s": 999.0}})
        assert hierarchy.is_stale(network)
        with pytest.raises(StaleHierarchyError):
            ch_shortest_path(network, ids[0], ids[-1], hierarchy)

    def test_stale_hierarchy_rebuild_answers_with_current_costs(self):
        network = _grid(42, rows=4, cols=4)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        source, destination = ids[0], ids[-1]
        before = ch_shortest_path(network, source, destination, hierarchy)
        for edge in list(network.path_edges(before.vertices)):
            network.update_edge_costs(
                {(edge.source, edge.target): {"travel_time_s": edge.travel_time_s * 50}}
            )
        path = ch_shortest_path(network, source, destination, hierarchy, on_stale="rebuild")
        assert not hierarchy.is_stale(network)
        reference = dijkstra(network, source, destination, COST)
        assert _path_cost(network, path) == pytest.approx(
            _path_cost(network, reference), rel=1e-9
        )

    def test_stale_hierarchy_ignore_keeps_frozen_answers(self):
        network = _grid(43, rows=4, cols=4)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        edge = next(network.edges())
        network.update_edge_costs({(edge.source, edge.target): {"travel_time_s": 999.0}})
        path = ch_shortest_path(network, ids[0], ids[-1], hierarchy, on_stale="ignore")
        assert path.vertices  # answered from the frozen structure, knowingly

    def test_invalid_on_stale_value_rejected(self):
        network = _grid(44, rows=3, cols=3)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        with pytest.raises(ValueError):
            ch_shortest_path(network, 0, 1, hierarchy, on_stale="nope")
