"""Compiled contraction-hierarchy queries and live-traffic re-weighting.

Property tests for :mod:`repro.network.compiled.ch` and its wiring:

* compiled CH path costs are identical to the dict-CH walker and to dict
  Dijkstra on randomized grids (paths valid, unreachable pairs agree);
* a re-weighted hierarchy answers exactly like a freshly rebuilt one after
  randomized :class:`~repro.traffic.TrafficUpdate` sequences — through both
  the O(touched) propagation path and the vectorized full recustomization;
* the staleness modes of :func:`~repro.routing.contraction.ch_shortest_path`
  (``raise`` / ``rebuild`` / ``ignore``) are preserved, and ``ignore``
  answers from the frozen weights on the compiled path too;
* ``compiled_disabled()`` falls back to the dict walker (ground truth) and
  ``refresh`` then performs a full rebuild instead of a re-weight;
* ``RoadNetwork.prepare_hierarchy`` shares, refreshes, and rebuilds the
  cached hierarchy across cost and topology mutations.
"""

from __future__ import annotations

import math
import random
import threading

import numpy as np
import pytest

from repro.exceptions import NoPathError, StaleHierarchyError
from repro.network import compiled_disabled, grid_city_network
from repro.network.compiled import ch as compiled_ch
from repro.routing import (
    CostFeature,
    build_contraction_hierarchy,
    ch_shortest_path,
    cost_function,
    dijkstra,
)
from repro.traffic import TrafficFeed, TrafficUpdate

COST = cost_function(CostFeature.TRAVEL_TIME)


def _grid(seed: int, rows: int = 6, cols: int = 6):
    return grid_city_network(rows=rows, cols=cols, seed=seed)


def _path_cost(network, path) -> float:
    return sum(COST(edge) for edge in network.path_edges(path.vertices))


def _random_pairs(network, count: int, rng: random.Random):
    ids = sorted(network.vertex_ids())
    return [(rng.choice(ids), rng.choice(ids)) for _ in range(count)]


def _random_updates(network, count: int, rng: random.Random, allow_decrease=True):
    low = 0.5 if allow_decrease else 1.05
    edges = rng.sample(list(network.edges()), count)
    return [
        TrafficUpdate.scale_by(
            edge.source, edge.target, travel_time_s=rng.uniform(low, 4.0)
        )
        for edge in edges
    ]


class TestCompiledQueries:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_costs_identical_to_dict_ch_and_dijkstra(self, seed):
        network = _grid(seed, rows=5 + seed, cols=6)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        rng = random.Random(seed)
        for source, destination in _random_pairs(network, 30, rng):
            compiled = ch_shortest_path(network, source, destination, hierarchy)
            with compiled_disabled():
                dict_walker = ch_shortest_path(network, source, destination, hierarchy)
                reference = dijkstra(network, source, destination, COST)
            assert compiled.is_valid(network)
            expected = _path_cost(network, reference)
            assert _path_cost(network, compiled) == pytest.approx(expected, rel=1e-9)
            assert _path_cost(network, dict_walker) == pytest.approx(expected, rel=1e-9)

    def test_compiled_hierarchy_is_cached_on_the_object(self):
        network = _grid(11)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        first = hierarchy._compiled
        assert first is not None
        ch_shortest_path(network, ids[1], ids[-2], hierarchy)
        assert hierarchy._compiled is first

    def test_unreachable_raises_on_both_paths(self):
        network = _grid(12, rows=3, cols=3)
        network.add_vertex(999, lon=0.0, lat=0.0)
        network.add_vertex(998, lon=0.001, lat=0.0)
        network.add_edge(999, 998)  # separate weak component
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        with pytest.raises(NoPathError):
            ch_shortest_path(network, 0, 999, hierarchy)
        with compiled_disabled():
            with pytest.raises(NoPathError):
                ch_shortest_path(network, 0, 999, hierarchy)

    def test_trivial_and_unknown_vertices(self):
        network = _grid(13, rows=3, cols=3)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        assert ch_shortest_path(network, 4, 4, hierarchy).is_trivial
        from repro.exceptions import VertexNotFoundError

        with pytest.raises(VertexNotFoundError):
            ch_shortest_path(network, 4, 12345, hierarchy)

    def test_hand_built_hierarchy_uses_dict_walker(self):
        from repro.routing.contraction import ContractionHierarchy, _Shortcut

        hierarchy = ContractionHierarchy(
            order={0: 0, 1: 1},
            upward={0: [_Shortcut(target=1, weight=1.0)], 1: []},
            downward={0: [], 1: []},
        )
        network = _grid(14, rows=2, cols=2)  # vertex ids 0..3: mismatched
        # No base weights / no build metadata: the compiled path must decline
        # and the dict walker answer (here: the hand-built arc).
        assert list(hierarchy.query(0, 1).vertices) == [0, 1]
        assert hierarchy.weights_version == 0
        assert hierarchy.reweight_count == 0


class TestDirectedGraphs:
    """One-way streets: the undirected fill skeleton must stay chordal."""

    def _directed_network(self, seed: int):
        from repro.network import RoadNetwork

        rng = random.Random(seed)
        network = RoadNetwork(name=f"one-way-{seed}")
        rows, cols = 5, 5
        for r in range(rows):
            for c in range(cols):
                network.add_vertex(r * cols + c, lon=0.01 * c, lat=0.01 * r)
        for r in range(rows):
            for c in range(cols):
                v = r * cols + c
                for dr, dc in ((0, 1), (1, 0)):
                    rr, cc = r + dr, c + dc
                    if rr < rows and cc < cols:
                        w = rr * cols + cc
                        # a mix of one-way and two-way segments
                        direction = rng.random()
                        if direction < 0.4:
                            network.add_edge(v, w)
                        elif direction < 0.8:
                            network.add_edge(w, v)
                        else:
                            network.add_edge(v, w, bidirectional=True)
        return network

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_one_way_edges_cost_identical(self, seed):
        network = self._directed_network(seed)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        rng = random.Random(seed + 100)
        for source, destination in _random_pairs(network, 40, rng):
            try:
                reference = dijkstra(network, source, destination, COST)
            except NoPathError:
                if source != destination:
                    with pytest.raises(NoPathError):
                        ch_shortest_path(network, source, destination, hierarchy)
                continue
            candidate = ch_shortest_path(network, source, destination, hierarchy)
            assert candidate.is_valid(network)
            assert _path_cost(network, candidate) == pytest.approx(
                _path_cost(network, reference), rel=1e-9
            )

    def test_one_way_reweight_exact(self):
        network = self._directed_network(7)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        rng = random.Random(7)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[0], hierarchy)
        for _ in range(3):
            feed = TrafficFeed(network)
            feed.apply(_random_updates(network, 8, rng))
            hierarchy.refresh(network)
            for source, destination in _random_pairs(network, 20, rng):
                try:
                    reference = dijkstra(network, source, destination, COST)
                except NoPathError:
                    continue
                candidate = ch_shortest_path(network, source, destination, hierarchy)
                assert _path_cost(network, candidate) == pytest.approx(
                    _path_cost(network, reference), rel=1e-9
                )


class TestReweighting:
    @pytest.mark.parametrize("batch_size", [3, 30])
    def test_reweighted_equals_rebuilt(self, batch_size):
        """Both re-weight paths (propagation and vectorized full)."""
        network = _grid(20)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        rng = random.Random(batch_size)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)  # compile
        for round_ in range(4):
            feed = TrafficFeed(network)
            feed.apply(_random_updates(network, batch_size, rng))
            hierarchy.refresh(network)
            assert not hierarchy.is_stale(network)
            fresh = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
            for source, destination in _random_pairs(network, 15, rng):
                reweighted = ch_shortest_path(network, source, destination, hierarchy)
                rebuilt = ch_shortest_path(network, source, destination, fresh)
                reference = dijkstra(network, source, destination, COST)
                expected = _path_cost(network, reference)
                assert _path_cost(network, reweighted) == pytest.approx(expected, rel=1e-9)
                assert _path_cost(network, rebuilt) == pytest.approx(expected, rel=1e-9)

    def test_reweight_bumps_weights_version_and_counter(self):
        network = _grid(21)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        assert hierarchy.weights_version == 0
        edge = next(network.edges())
        network.update_edge_costs(
            {(edge.source, edge.target): {"travel_time_s": edge.travel_time_s * 3}}
        )
        hierarchy.refresh(network)
        assert hierarchy.weights_version == 1
        assert hierarchy.reweight_count == 1
        assert hierarchy.built_version == network.version

    def test_refresh_under_compiled_disabled_rebuilds(self):
        network = _grid(22)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        edge = next(network.edges())
        network.update_edge_costs(
            {(edge.source, edge.target): {"travel_time_s": edge.travel_time_s * 3}}
        )
        with compiled_disabled():
            hierarchy.refresh(network)
            # A full rebuild: the dict arc maps now carry current weights.
            assert hierarchy.reweight_count == 0
            source, destination = ids[0], ids[-1]
            refreshed = ch_shortest_path(network, source, destination, hierarchy)
            reference = dijkstra(network, source, destination, COST)
            assert _path_cost(network, refreshed) == pytest.approx(
                _path_cost(network, reference), rel=1e-9
            )

    def test_topology_mutation_forces_full_rebuild(self):
        network = _grid(23, rows=4, cols=4)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        compiled_before = hierarchy._compiled
        network.add_vertex(777, lon=0.0, lat=0.0)
        network.add_edge(ids[0], 777)
        hierarchy.refresh(network)
        assert hierarchy.reweight_count == 0  # rebuilt, not re-weighted
        assert hierarchy._compiled is not compiled_before
        path = ch_shortest_path(network, ids[0], 777, hierarchy)
        assert path.vertices[-1] == 777

    def test_cost_decreases_are_exact(self):
        """Witness-free arc sets stay exact when edges get *cheaper*."""
        network = _grid(24)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        rng = random.Random(24)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        updates = {}
        for edge in rng.sample(list(network.edges()), 25):
            updates[(edge.source, edge.target)] = {
                "travel_time_s": edge.travel_time_s * 0.2
            }
        network.update_edge_costs(updates)
        hierarchy.refresh(network)
        for source, destination in _random_pairs(network, 20, rng):
            candidate = ch_shortest_path(network, source, destination, hierarchy)
            reference = dijkstra(network, source, destination, COST)
            assert _path_cost(network, candidate) == pytest.approx(
                _path_cost(network, reference), rel=1e-9
            )

    def test_reweight_noop_diff_keeps_version(self):
        network = _grid(25, rows=4, cols=4)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        compiled = hierarchy._compiled
        assert compiled.reweight(compiled.base_weights.copy()) == 0
        assert compiled.weights_version == 0


class TestStalenessModes:
    def _stale_pair(self, seed: int):
        network = _grid(seed, rows=4, cols=4)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        edge = next(network.edges())
        network.update_edge_costs(
            {(edge.source, edge.target): {"travel_time_s": 999.0}}
        )
        return network, hierarchy, ids

    def test_raise_is_preserved(self):
        network, hierarchy, ids = self._stale_pair(30)
        assert hierarchy.is_stale(network)
        with pytest.raises(StaleHierarchyError):
            ch_shortest_path(network, ids[0], ids[-1], hierarchy)

    def test_ignore_answers_frozen_on_compiled_path(self):
        network, hierarchy, ids = self._stale_pair(31)
        frozen = ch_shortest_path(network, ids[0], ids[-1], hierarchy, on_stale="ignore")
        with compiled_disabled():
            dict_frozen = ch_shortest_path(
                network, ids[0], ids[-1], hierarchy, on_stale="ignore"
            )
        # Both answer from the *build-time* weights: identical frozen costs
        # under the build metric (stored base weights), and no re-weight ran.
        assert hierarchy.weights_version == 0
        base = hierarchy.base_slot_weights
        graph = network.compiled()
        frozen_cost = sum(
            base[graph.slot(a, b)]
            for a, b in zip(frozen.vertices, frozen.vertices[1:])
        )
        dict_cost = sum(
            base[graph.slot(a, b)]
            for a, b in zip(dict_frozen.vertices, dict_frozen.vertices[1:])
        )
        assert frozen_cost == pytest.approx(dict_cost, rel=1e-9)

    def test_rebuild_reweights_and_answers_current(self):
        network, hierarchy, ids = self._stale_pair(32)
        path = ch_shortest_path(network, ids[0], ids[-1], hierarchy, on_stale="rebuild")
        assert not hierarchy.is_stale(network)
        assert hierarchy.reweight_count == 1  # cheap re-weight, no rebuild
        reference = dijkstra(network, ids[0], ids[-1], COST)
        assert _path_cost(network, path) == pytest.approx(
            _path_cost(network, reference), rel=1e-9
        )


class TestPrepareHierarchy:
    def test_shared_and_refreshed(self):
        network = _grid(40, rows=4, cols=4)
        first = network.prepare_hierarchy()
        second = network.prepare_hierarchy()
        assert first is second
        edge = next(network.edges())
        network.update_edge_costs(
            {(edge.source, edge.target): {"travel_time_s": edge.travel_time_s * 2}}
        )
        third = network.prepare_hierarchy()
        assert third is first
        assert not third.is_stale(network)

    def test_distinct_features_get_distinct_hierarchies(self):
        network = _grid(41, rows=3, cols=3)
        travel = network.prepare_hierarchy(CostFeature.TRAVEL_TIME)
        distance = network.prepare_hierarchy(CostFeature.DISTANCE)
        assert travel is not distance
        assert travel.build_args[0] == CostFeature.TRAVEL_TIME
        assert distance.build_args[0] == CostFeature.DISTANCE

    def test_pickled_network_drops_hierarchies_and_rebuilds(self):
        import pickle

        network = _grid(42, rows=3, cols=3)
        network.prepare_hierarchy()
        restored = pickle.loads(pickle.dumps(network))
        assert restored._hierarchies == {}
        hierarchy = restored.prepare_hierarchy()
        ids = sorted(restored.vertex_ids())
        path = ch_shortest_path(restored, ids[0], ids[-1], hierarchy)
        assert path.is_valid(restored)

    def test_topology_version_counts_structure_only(self):
        network = _grid(43, rows=3, cols=3)
        before = network.topology_version
        edge = next(network.edges())
        network.update_edge_costs(
            {(edge.source, edge.target): {"travel_time_s": edge.travel_time_s * 2}}
        )
        assert network.topology_version == before
        network.add_vertex(555, lon=0.0, lat=0.0)
        assert network.topology_version == before + 1


class TestCompiledHierarchyInternals:
    def test_min_fill_order_used_without_coordinates(self):
        network = _grid(50, rows=4, cols=4)
        graph = network.compiled()
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        compiled = compiled_ch.CompiledHierarchy(
            graph.topology, np.asarray(hierarchy.base_slot_weights)
        )
        ids = sorted(network.vertex_ids())
        index_of = graph.index_of
        rng = random.Random(50)
        for source, destination in _random_pairs(network, 20, rng):
            cost = compiled.query_cost(index_of[source], index_of[destination])
            try:
                reference = _path_cost(
                    network, dijkstra(network, source, destination, COST)
                )
            except NoPathError:
                assert cost == math.inf
                continue
            assert cost == pytest.approx(reference, rel=1e-9)

    def test_rank_is_a_permutation(self):
        network = _grid(51, rows=5, cols=4)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        compiled = hierarchy._compiled
        assert sorted(compiled.rank) == list(range(network.vertex_count))
        # every vertex reaches its component root through strictly
        # increasing ranks
        for v in range(network.vertex_count):
            parent = compiled.tree_parent[v]
            if parent >= 0:
                assert compiled.rank[parent] > compiled.rank[v]


class TestCompiledHierarchyCacheRace:
    """Regression: the lazy ``_compiled`` install is first-build-wins.

    ``compiled_hierarchy`` used to write ``hierarchy._compiled`` with no
    lock (reprolint RL002); two ``route_many`` workers racing the first
    compiled query could each install *their own* CompiledHierarchy and
    keep querying different instances whose ``weights_version`` counters
    then drift independently under re-weights.  Every racer must come away
    holding the one instance that won the install.
    """

    def test_concurrent_first_builds_share_one_instance(self):
        network = _grid(21, rows=5, cols=5)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        graph = network.compiled()
        assert getattr(hierarchy, "_compiled", None) is None
        workers = 8
        barrier = threading.Barrier(workers)
        results: list[object] = []
        errors: list[BaseException] = []

        def build() -> None:
            try:
                barrier.wait(timeout=30)
                results.append(
                    compiled_ch.compiled_hierarchy(hierarchy, graph, network)
                )
            except BaseException as exc:  # surfaced below; never swallowed
                errors.append(exc)

        threads = [threading.Thread(target=build) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(results) == workers
        winner = results[0]
        assert winner is not None
        assert all(result is winner for result in results)
        assert hierarchy._compiled is winner
        # ...and the shared instance answers correctly.
        ids = sorted(network.vertex_ids())
        path = ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        assert path.is_valid(network)


class TestCompiledDtypeContracts:
    """Regression for the reprolint RL004 fixes: the arrays the CH kernels
    exchange pin their dtypes instead of inheriting platform defaults."""

    def test_reweight_and_labels_stay_float64(self):
        network = _grid(22)
        hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
        ids = sorted(network.vertex_ids())
        ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        compiled = hierarchy._compiled
        assert compiled.base_weights.dtype == np.float64
        # Drive the vectorized full-recustomization path (touches the
        # searchsorted over topology offsets that RL004 caught untyped).
        rng = random.Random(22)
        feed = TrafficFeed(network)
        feed.apply(_random_updates(network, 30, rng))
        hierarchy.refresh(network)
        assert compiled.base_weights.dtype == np.float64
        path = ch_shortest_path(network, ids[0], ids[-1], hierarchy)
        assert path.is_valid(network)
