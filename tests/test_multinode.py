"""Fault-tolerant multi-node transport (:mod:`repro.service.sharding.transport`).

Four layers:

* **wire** — the length-prefixed pickle frame codec and its caps;
* **endpoints** — :class:`SocketTransport` reconnect behaviour and the
  :class:`TcpHub` registry (displacement, drops, partitions);
* **replication** — :class:`HeartbeatMonitor` with an injected clock,
  :class:`CostDiffJournal` chain/truncation semantics, and the seeded
  :class:`FaultyTransport` chaos wrapper;
* **deployment** — kill-the-primary failover over replicas, journal replay
  (and truncation fallback) through healed partitions, hedged requests, the
  crash-between-broadcast-and-ack barrier, and shutdown stragglers — with
  100% cost identity against full-network Dijkstra throughout.

The deployment tests boot real worker processes over loopback TCP, so they
keep grids small and share deployments per scenario.
"""

from __future__ import annotations

import math
import pickle
import queue
import random
import socket
import struct
import threading
import time

import pytest

from repro.network import grid_city_network
from repro.network.compiled import shm
from repro.routing import CostFeature, cost_function, dijkstra
from repro.service import FaultInjector, RouteRequest, ShardedRoutingService
from repro.service.faults import FaultyTransport
from repro.service.resilience import HedgePolicy
from repro.service.sharding import (
    MAX_FRAME_BYTES,
    CostDiff,
    CostDiffJournal,
    FrameError,
    Hello,
    HeartbeatMonitor,
    QueueTransport,
    ShardWorkerPool,
    SocketTransport,
    TcpHub,
    WorkerPayload,
    build_shard_plan,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.service.sharding.overlay import path_cost
from repro.traffic.updates import TrafficUpdate


def _reference_cost(network, source, destination, feature) -> float:
    try:
        path = dijkstra(network, source, destination, cost_function(feature))
    except Exception:
        return math.inf
    return path_cost(network, tuple(path), feature)


def _response_cost(network, response, feature) -> float:
    if response.path is None:
        return math.inf
    return path_cost(network, tuple(response.path.vertices), feature)


def _requests(network, count, seed=7):
    rng = random.Random(seed)
    vertices = sorted(network.vertex_ids())
    return [
        RouteRequest(source=rng.choice(vertices), destination=rng.choice(vertices))
        for _ in range(count)
    ]


def _assert_identity(network, service, requests, engine="Shortest"):
    feature = (
        CostFeature.DISTANCE if engine == "Shortest" else CostFeature.TRAVEL_TIME
    )
    responses = service.route_many(requests, engine=engine)
    assert all(r.error is None for r in responses), [
        r.error for r in responses if r.error
    ]
    for request, response in zip(requests, responses):
        got = _response_cost(network, response, feature)
        want = _reference_cost(network, request.source, request.destination, feature)
        assert math.isclose(got, want, rel_tol=1e-9)
    return responses


# -------------------------------------------------------------------- #
# Wire framing
# -------------------------------------------------------------------- #
class TestFrameCodec:
    def test_round_trip_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = Hello(worker_id=3, shard_id=1, pid=123, cost_version=7)
            send_frame(left, message, timeout_s=2.0)
            assert recv_frame(right, timeout_s=2.0) == message
        finally:
            left.close()
            right.close()

    def test_frame_layout_is_length_prefixed_pickle(self):
        frame = encode_frame("payload")
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert pickle.loads(frame[4:]) == "payload"

    def test_oversized_message_refused_at_encode(self):
        with pytest.raises(FrameError):
            encode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_oversized_length_prefix_refused_at_decode(self):
        left, right = socket.socketpair()
        try:
            left.settimeout(2.0)
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameError):
                recv_frame(right, timeout_s=2.0)
        finally:
            left.close()
            right.close()

    def test_peer_close_mid_frame_raises_eof(self):
        left, right = socket.socketpair()
        try:
            left.settimeout(2.0)
            left.sendall(struct.pack(">I", 64) + b"partial")
            left.close()
            with pytest.raises(EOFError):
                recv_frame(right, timeout_s=2.0)
        finally:
            right.close()

    def test_no_frame_within_timeout_raises_socket_timeout(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(socket.timeout):
                recv_frame(right, timeout_s=0.05)
        finally:
            left.close()
            right.close()


# -------------------------------------------------------------------- #
# Endpoints
# -------------------------------------------------------------------- #
def _wait_until(predicate, timeout_s=10.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestSocketEndpoints:
    def test_hub_registers_on_first_frame_and_round_trips(self):
        with TcpHub() as hub:
            transport = SocketTransport(hub.address)
            try:
                transport.send(Hello(worker_id=5, shard_id=0, pid=1, cost_version=0))
                hello = hub.recv(timeout_s=5.0)
                assert hello.worker_id == 5
                assert _wait_until(lambda: hub.connected(5))
                assert hub.send(5, "downstream")
                assert transport.recv(timeout_s=5.0) == "downstream"
            finally:
                transport.close()

    def test_recv_timeout_raises_queue_empty_like_the_queue_transport(self):
        with TcpHub() as hub:
            transport = SocketTransport(hub.address)
            try:
                transport.send(Hello(worker_id=0, shard_id=0, pid=1, cost_version=0))
                hub.recv(timeout_s=5.0)  # drain the identify frame
                with pytest.raises(queue.Empty):
                    transport.recv(timeout_s=0.05)
                with pytest.raises(queue.Empty):
                    hub.recv(timeout_s=0.0)
            finally:
                transport.close()

    def test_dropped_connection_reconnects_and_reidentifies(self):
        with TcpHub() as hub:
            transport = SocketTransport(hub.address)
            transport.identify = lambda: Hello(
                worker_id=9, shard_id=0, pid=1, cost_version=4
            )
            try:
                transport.send(Hello(worker_id=9, shard_id=0, pid=1, cost_version=0))
                assert hub.recv(timeout_s=5.0).cost_version == 0
                assert _wait_until(lambda: hub.connected(9))
                assert hub.drop_connection(9)
                assert hub.drops == 1
                # The next poll notices the dead link and redials; the first
                # frame of the new connection is the identify Hello.
                for _ in range(200):
                    try:
                        transport.recv(timeout_s=0.05)
                    except queue.Empty:
                        pass
                    if hub.connected(9):
                        break
                assert hub.connected(9)
                assert transport.connects >= 2
                rehello = hub.recv(timeout_s=5.0)
                assert isinstance(rehello, Hello) and rehello.cost_version == 4
            finally:
                transport.close()

    def test_newer_connection_displaces_older(self):
        with TcpHub() as hub:
            first = SocketTransport(hub.address)
            second = SocketTransport(hub.address)
            try:
                first.send(Hello(worker_id=1, shard_id=0, pid=1, cost_version=0))
                hub.recv(timeout_s=5.0)
                second.send(Hello(worker_id=1, shard_id=0, pid=2, cost_version=1))
                assert hub.recv(timeout_s=5.0).pid == 2
                assert _wait_until(lambda: hub.connected(1))
                assert hub.connected_workers() == [1]
                assert hub.send(1, "to-the-newer")
                assert second.recv(timeout_s=5.0) == "to-the-newer"
            finally:
                first.close()
                second.close()

    def test_send_to_unknown_worker_is_false_not_an_exception(self):
        with TcpHub() as hub:
            assert not hub.send(42, "nobody-home")
            assert hub.broadcast("nobody-home") == 0

    def test_partitioned_worker_stays_disconnected_until_healed(self):
        with TcpHub() as hub:
            transport = SocketTransport(hub.address)
            transport.identify = lambda: Hello(
                worker_id=2, shard_id=0, pid=1, cost_version=0
            )
            try:
                transport.send(Hello(worker_id=2, shard_id=0, pid=1, cost_version=0))
                hub.recv(timeout_s=5.0)
                assert _wait_until(lambda: hub.connected(2))
                assert hub.partition_worker(2)
                # Repeated polls keep redialing, but every dial is refused
                # at the handshake while the partition is open.
                for _ in range(20):
                    with pytest.raises(queue.Empty):
                        transport.recv(timeout_s=0.02)
                    assert not hub.connected(2)
                hub.heal_worker(2)
                assert _wait_until(
                    lambda: self._poll_once(transport) or hub.connected(2)
                )
                assert hub.connected(2)
            finally:
                transport.close()

    @staticmethod
    def _poll_once(transport) -> bool:
        try:
            transport.recv(timeout_s=0.02)
        except queue.Empty:
            pass
        return False

    def test_reconnect_budget_exhaustion_surfaces_as_eof(self):
        hub = TcpHub()
        address = hub.address
        hub.close()
        from repro.service.resilience import RetryPolicy

        transport = SocketTransport(
            address, retry=RetryPolicy(max_retries=1, base_delay_s=0.001)
        )
        with pytest.raises(EOFError):
            transport.recv(timeout_s=0.05)


# -------------------------------------------------------------------- #
# Replication primitives
# -------------------------------------------------------------------- #
class TestHeartbeatMonitor:
    def test_unanswered_probe_crosses_deadline_once(self):
        clock = [0.0]
        monitor = HeartbeatMonitor([0, 1], clock=lambda: clock[0])
        monitor.note_ping(0)
        monitor.note_ping(1)
        clock[0] = 1.0
        monitor.note_message(1)  # any traffic proves life
        clock[0] = 6.0
        assert monitor.is_suspect(0, timeout_s=5.0)
        assert not monitor.is_suspect(1, timeout_s=5.0)
        assert monitor.suspects(timeout_s=5.0) == [0]
        assert monitor.timeouts == 1
        # The crossing re-arms: not reported again until a fresh deadline.
        assert monitor.suspects(timeout_s=5.0) == []
        clock[0] = 12.0
        assert monitor.suspects(timeout_s=5.0) == [0]
        assert monitor.timeouts == 2

    def test_reprobing_a_silent_worker_does_not_extend_its_deadline(self):
        clock = [0.0]
        monitor = HeartbeatMonitor([0], clock=lambda: clock[0])
        monitor.note_ping(0)
        clock[0] = 4.0
        monitor.note_ping(0)  # outstanding probe: deadline must not move
        clock[0] = 5.0
        assert monitor.is_suspect(0, timeout_s=5.0)

    def test_recovery_after_message(self):
        clock = [0.0]
        monitor = HeartbeatMonitor([0], clock=lambda: clock[0])
        monitor.note_ping(0)
        clock[0] = 2.0
        monitor.note_message(0)
        clock[0] = 100.0
        assert not monitor.is_suspect(0, timeout_s=5.0)
        assert monitor.pings_sent == 1 and monitor.timeouts == 0


def _diff(version, base_version):
    return CostDiff(version=version, base_version=base_version, changes=())


class TestCostDiffJournal:
    def test_chain_bridges_contiguous_versions(self):
        journal = CostDiffJournal(capacity=8)
        for v in range(1, 5):
            journal.append(_diff(v, v - 1))
        assert journal.head_version == 4
        assert [d.version for d in journal.chain(0)] == [1, 2, 3, 4]
        assert [d.version for d in journal.chain(2)] == [3, 4]
        assert journal.chain(4) == []  # already current
        assert journal.chain(9) == []  # ahead (stale coordinator restart)

    def test_truncated_history_returns_none(self):
        journal = CostDiffJournal(capacity=2)
        for v in range(1, 6):
            journal.append(_diff(v, v - 1))
        assert len(journal) == 2
        assert journal.tail_base_version == 3
        assert journal.chain(0) is None
        assert [d.version for d in journal.chain(3)] == [4, 5]

    def test_discontinuity_clears_the_journal(self):
        journal = CostDiffJournal(capacity=8)
        journal.append(_diff(1, 0))
        journal.append(_diff(2, 1))
        journal.append(_diff(7, 5))  # gap: everything older is poisoned
        assert len(journal) == 1
        assert journal.chain(0) is None
        assert [d.version for d in journal.chain(5)] == [7]

    def test_capacity_zero_never_replays(self):
        journal = CostDiffJournal(capacity=0)
        journal.append(_diff(1, 0))
        assert len(journal) == 0 and journal.chain(0) is None

    def test_counters(self):
        journal = CostDiffJournal()
        journal.record_replay()
        journal.record_resync()
        journal.record_resync()
        assert journal.replays == 1 and journal.resyncs == 2


# -------------------------------------------------------------------- #
# Transport chaos wrapper
# -------------------------------------------------------------------- #
class _Loopback:
    """A minimal in-memory Transport: send() feeds its own recv()."""

    def __init__(self):
        self.inbox = queue.Queue()
        self.sent = []

    def send(self, message):
        self.sent.append(message)
        self.inbox.put(message)

    def recv(self, timeout_s=None):
        return self.inbox.get(timeout=timeout_s if timeout_s is not None else 0.05)


class TestFaultyTransport:
    def test_same_seed_same_schedule(self):
        def run(seed):
            wrapped = FaultInjector(seed).transport(
                _Loopback(), drop_rate=0.3, delay_rate=0.2, duplicate_rate=0.2,
                delay_s=0.0,
            )
            for i in range(60):
                wrapped.send(i)
            return list(wrapped.counters.actions)

        assert run(11) == run(11)
        assert run(11) != run(12)
        actions = run(11)
        assert {"drop", "duplicate"} <= set(actions)

    def test_drop_loses_and_duplicate_doubles(self):
        inner = _Loopback()
        wrapped = FaultInjector(0).transport(
            inner, script=["drop", "ok", "duplicate"]
        )
        wrapped.send("a")
        wrapped.send("b")
        wrapped.send("c")
        assert inner.sent == ["b", "c", "c"]
        counters = wrapped.counters
        assert counters.dropped_messages == 1
        assert counters.duplicated_messages == 1

    def test_one_way_partition_outbound_only(self):
        inner = _Loopback()
        wrapped = FaultInjector(0).transport(inner)
        inner.inbox.put("inbound-ok")
        wrapped.partition(outbound=True, inbound=False)
        wrapped.send("lost")
        assert inner.sent == []
        assert wrapped.recv(timeout_s=0.2) == "inbound-ok"  # other way open
        assert wrapped.counters.partitioned_messages == 1
        wrapped.heal()
        wrapped.send("after-heal")
        assert inner.sent == ["after-heal"]

    def test_one_way_partition_inbound_only(self):
        inner = _Loopback()
        wrapped = FaultInjector(0).transport(inner)
        inner.inbox.put("unreachable")
        wrapped.partition(outbound=False, inbound=True)
        wrapped.send("outbound-ok")
        assert inner.sent == ["outbound-ok"]
        with pytest.raises(queue.Empty):
            wrapped.recv(timeout_s=0.02)
        wrapped.heal()
        assert wrapped.recv(timeout_s=0.2) == "unreachable"

    def test_partition_chaos_schedule_is_cross_run_deterministic(self):
        """The exact sequence a chaos run takes through partition + seeded
        faults replays bit-identically (chaos-smoke reruns this test in a
        separate process and diffs the schedules)."""
        def run():
            inner = _Loopback()
            wrapped = FaultInjector(99).transport(
                inner, drop_rate=0.25, duplicate_rate=0.25, delay_s=0.0
            )
            for i in range(10):
                wrapped.send(("pre", i))
            wrapped.partition(inbound=False)
            for i in range(5):
                wrapped.send(("dark", i))
            wrapped.heal()
            for i in range(10):
                wrapped.send(("post", i))
            return list(wrapped.counters.actions), list(inner.sent)

        actions, delivered = run()
        assert (actions, delivered) == run()
        # Partitioned sends never consumed schedule randomness, so the
        # post-heal schedule is independent of how long the partition held.
        assert len(actions) == 20


class TestHedgePolicy:
    def test_initial_delay_until_enough_samples(self):
        policy = HedgePolicy(initial_delay_s=0.25, min_samples=4)
        assert policy.delay_s() == 0.25
        for _ in range(4):
            policy.record(0.04)
        assert math.isclose(policy.delay_s(), 0.06, rel_tol=1e-9)  # p95 * 1.5

    def test_delay_clamped_to_band(self):
        policy = HedgePolicy(min_delay_s=0.02, max_delay_s=0.5, min_samples=1)
        policy.record(0.0001)
        assert policy.delay_s() == 0.02
        policy.record(10.0)
        assert policy.delay_s() == 0.5


# -------------------------------------------------------------------- #
# Deployments
# -------------------------------------------------------------------- #
class TestFaultTolerantDeployment:
    def test_kill_primary_failover_serves_all_requests_identically(self):
        """Kill the primary replica mid-batch: every request is still
        answered, cost-identical, with zero drops — the standby absorbs the
        batch while the pool respawns the corpse."""
        network = grid_city_network(5, 5, seed=3)
        requests = _requests(network, 16)
        with ShardedRoutingService(
            network, shard_count=2, transport="tcp", replicas=2
        ) as service:
            assert service.replicas_of(0) == [0, 2]
            assert service.replicas_of(1) == [1, 3]
            _assert_identity(network, service, requests)

            service.inject_crash(1, phase="work")
            _assert_identity(network, service, requests)

            stats = service.stats()
            assert stats.replicas == 2 and stats.transport == "tcp"
            assert stats.failovers >= 1
            # The crash batch may finish entirely via failover before the
            # coordinator observes the corpse; the respawn happens inside a
            # later serving loop once the process handle reads dead.
            def _respawned() -> bool:
                if service.stats().worker_restarts >= 1:
                    return True
                service.route_many(requests[:2])
                return False

            assert _wait_until(_respawned)
            # And the deployment still serves identically afterwards.
            _assert_identity(network, service, requests, engine="Fastest")

    def test_journal_replay_catches_up_a_healed_partition(self):
        """A partitioned worker misses a broadcast; on heal it replays the
        CostDiff chain from the journal — observed via the journal_replays
        counter, with journal_resyncs untouched — and identity holds."""
        network = grid_city_network(5, 5, seed=3)
        rng = random.Random(5)
        edges = [(e.source, e.target) for e in network.edges()]
        requests = _requests(network, 12)
        with ShardedRoutingService(
            network, shard_count=2, transport="tcp", journal_capacity=16
        ) as service:
            assert service.partition_worker(1)
            batch = [
                TrafficUpdate.scale_by(
                    *rng.choice(edges), travel_time_s=rng.uniform(1.5, 2.5)
                )
                for _ in range(6)
            ]
            service.apply_traffic(batch, wait=False)
            service.heal_worker(1)
            # The next acked barrier forces the catch-up: the healed
            # worker's reconnect Hello carries its stale version and the
            # journal bridges the gap.
            more = [
                TrafficUpdate.scale_by(
                    *rng.choice(edges), travel_time_s=rng.uniform(1.5, 2.5)
                )
                for _ in range(6)
            ]
            service.apply_traffic(more, wait=True)
            stats = service.stats()
            assert stats.journal_replays >= 1
            assert stats.journal_resyncs == 0
            assert stats.worker_restarts == 0  # a network fault, not a crash
            _assert_identity(network, service, requests, engine="Fastest")

    def test_truncated_journal_falls_back_to_full_resync(self):
        """With a one-entry journal, a worker that missed several broadcasts
        cannot be bridged: the coordinator orders ResyncRequired instead."""
        network = grid_city_network(5, 5, seed=3)
        rng = random.Random(6)
        edges = [(e.source, e.target) for e in network.edges()]
        requests = _requests(network, 12)
        with ShardedRoutingService(
            network, shard_count=2, transport="tcp", journal_capacity=1
        ) as service:
            assert service.partition_worker(1)
            for _ in range(3):
                batch = [
                    TrafficUpdate.scale_by(
                        *rng.choice(edges), travel_time_s=rng.uniform(1.5, 2.5)
                    )
                    for _ in range(4)
                ]
                service.apply_traffic(batch, wait=False)
            service.heal_worker(1)
            final = [
                TrafficUpdate.scale_by(
                    *rng.choice(edges), travel_time_s=rng.uniform(1.5, 2.5)
                )
                for _ in range(4)
            ]
            service.apply_traffic(final, wait=True)
            stats = service.stats()
            assert stats.journal_resyncs >= 1
            assert stats.journal_depth == 1
            _assert_identity(network, service, requests, engine="Fastest")

    def test_hedged_requests_duplicate_to_a_standby(self):
        network = grid_city_network(4, 4, seed=3)
        requests = _requests(network, 12)
        with ShardedRoutingService(
            network,
            shard_count=2,
            transport="tcp",
            replicas=2,
            hedge=True,
            hedge_delay_s=0.0,  # hedge immediately: every wait loop fires
        ) as service:
            _assert_identity(network, service, requests)
            stats = service.stats()
            assert stats.hedged_requests >= 1
            # Winners are timing-dependent; the counter only ever counts
            # answers that really came from the hedge target.
            assert 0 <= stats.hedge_wins <= stats.hedged_requests

    def test_heartbeat_round_probes_every_worker(self):
        network = grid_city_network(4, 4, seed=3)
        with ShardedRoutingService(
            network, shard_count=2, transport="tcp", heartbeat_timeout_s=30.0
        ) as service:
            assert service.heartbeat() == []  # all healthy
            stats = service.stats()
            assert stats.heartbeats_sent == 2
            assert stats.heartbeat_timeouts == 0


class TestAckBarrierUnderCrash:
    @pytest.mark.parametrize("transport", ["queue", "tcp"])
    def test_worker_crashing_between_broadcast_and_ack(self, transport):
        """The regression the barrier must survive: a worker dies *after*
        the CostDiff broadcast but *before* acking.  apply_traffic(wait=True)
        must complete (respawn + boot-resync counts as the ack), well inside
        the traffic timeout, and identity must hold right after."""
        network = grid_city_network(5, 5, seed=3)
        rng = random.Random(9)
        edges = [(e.source, e.target) for e in network.edges()]
        requests = _requests(network, 12)
        with ShardedRoutingService(
            network, shard_count=2, transport=transport, traffic_timeout_s=60.0
        ) as service:
            service.inject_crash(0, phase="diff")
            batch = [
                TrafficUpdate.scale_by(
                    *rng.choice(edges), travel_time_s=rng.uniform(1.5, 2.5)
                )
                for _ in range(6)
            ]
            started = time.monotonic()
            result = service.apply_traffic(batch, wait=True)
            elapsed = time.monotonic() - started
            assert result.applied
            assert elapsed < 60.0  # completed, did not ride the timeout out
            stats = service.stats()
            assert stats.worker_restarts >= 1
            _assert_identity(network, service, requests, engine="Fastest")


class TestShutdownStragglers:
    @pytest.mark.parametrize("transport", ["queue", "tcp"])
    def test_worker_ignoring_shutdown_is_terminated_within_deadline(
        self, transport
    ):
        """A wedged worker that drops Shutdown on the floor must be
        terminate()d by the pool's close deadline — reported unclean, never
        a deadlock."""
        network = grid_city_network(4, 4, seed=3)
        plan = build_shard_plan(network, 2)
        segment = shm.export_graph(
            network.compiled(), cost_version=network.cost_version
        )
        try:
            payloads = [
                WorkerPayload(
                    worker_id=worker_id,
                    shard_id=worker_id,
                    plan=plan,
                    network=network,
                    spec=segment.spec,
                    ignore_shutdown=(worker_id == 1),
                )
                for worker_id in range(2)
            ]
            pool = ShardWorkerPool(payloads, transport=transport)
            pool.start()
            started = time.monotonic()
            clean = pool.close(timeout_s=2.0)
            elapsed = time.monotonic() - started
            assert clean is False  # the straggler had to be terminated
            assert elapsed < 30.0
            assert not any(pool.alive())
        finally:
            segment.close()
            segment.unlink()

    @pytest.mark.parametrize("transport", ["queue", "tcp"])
    def test_orderly_workers_close_clean(self, transport):
        network = grid_city_network(4, 4, seed=3)
        plan = build_shard_plan(network, 2)
        segment = shm.export_graph(
            network.compiled(), cost_version=network.cost_version
        )
        try:
            payloads = [
                WorkerPayload(
                    worker_id=worker_id,
                    shard_id=worker_id,
                    plan=plan,
                    network=network,
                    spec=segment.spec,
                )
                for worker_id in range(2)
            ]
            pool = ShardWorkerPool(payloads, transport=transport)
            pool.start()
            assert pool.close(timeout_s=15.0) is True
        finally:
            segment.close()
            segment.unlink()
