"""Fig. 6 — statistical evidence for the preference-model design choices.

Fig. 6(a): for each T-edge, count the number of distinct per-path preferences;
the paper reports that over 70 % of T-edges have a single preference, and that
the learned preferences are spread over the three travel-cost features.

Fig. 6(b): bucket T-edge pairs by their ``reSim`` similarity and report the
mean preference (Jaccard) similarity per bucket plus the share of pairs in
each bucket; the paper's observation is that similar region edges have similar
preferences, which is what justifies the transfer step.
"""

from __future__ import annotations

from collections import Counter

from repro.evaluation import format_series
from repro.preferences import region_edge_similarity


def test_fig6a_preference_distribution(benchmark, d2):
    scenario, _, pipeline = d2
    learned = pipeline.model.learned_preferences

    def compute():
        unique_counts = Counter()
        master_counts = Counter()
        for result in learned.values():
            unique_counts[min(result.unique_preference_count, 4)] += 1
            master_counts[result.preference.master.short_name] += 1
        return unique_counts, master_counts

    unique_counts, master_counts = benchmark(compute)
    total = sum(unique_counts.values())
    single_share = 100.0 * unique_counts.get(1, 0) / total if total else 0.0

    print()
    print("Fig. 6(a): distribution of learned preferences (D2-like)")
    print(f"T-edges with a single per-path preference: {single_share:.1f}%")
    labels = ["1", "2", "3", ">=4"]
    shares = [100.0 * unique_counts.get(i, 0) / total for i in (1, 2, 3, 4)]
    print(format_series({"% of T-edges": shares}, labels, "Unique preferences per T-edge"))
    master_total = sum(master_counts.values())
    print(
        format_series(
            {"% of T-edges": [100.0 * master_counts.get(k, 0) / master_total for k in ("DI", "TT", "FC")]},
            ["DI", "TT", "FC"],
            "Travel-cost feature of the learned preferences",
        )
    )

    # Paper shape: a clear majority of T-edges carry a single preference.
    assert single_share > 50.0
    # All three travel-cost features appear in the learned preferences.
    assert len(master_counts) >= 2


def test_fig6b_similarity_vs_preference_similarity(benchmark, d2):
    scenario, _, pipeline = d2
    t_edges = [e for e in pipeline.region_graph.t_edges() if e.preference is not None][:150]
    buckets = [(0.0, 0.5), (0.5, 0.7), (0.7, 0.9), (0.9, 2.01)]

    def compute():
        totals = [0.0] * len(buckets)
        counts = [0] * len(buckets)
        pairs = 0
        for i in range(len(t_edges)):
            for j in range(i + 1, len(t_edges)):
                similarity = region_edge_similarity(t_edges[i], t_edges[j])
                preference_similarity = t_edges[i].preference.similarity(t_edges[j].preference)
                pairs += 1
                for b, (lo, hi) in enumerate(buckets):
                    if lo <= similarity < hi:
                        totals[b] += preference_similarity
                        counts[b] += 1
                        break
        return totals, counts, pairs

    totals, counts, pairs = benchmark.pedantic(compute, rounds=1, iterations=1)
    mean_pref = [100.0 * totals[b] / counts[b] if counts[b] else 0.0 for b in range(len(buckets))]
    share = [100.0 * counts[b] / pairs if pairs else 0.0 for b in range(len(buckets))]
    labels = ["[0,0.5)", "[0.5,0.7)", "[0.7,0.9)", ">=0.9"]

    print()
    print("Fig. 6(b): T-edge similarity vs. preference similarity (D2-like)")
    print(format_series({"Pref. similarity %": mean_pref, "Pair share %": share}, labels, "By reSim bucket"))

    # Paper shape: more similar region edges have more similar preferences.
    # On the synthetic scenarios the correlation is present but weak (the
    # zone-pair preference palette is small), so only a loose non-degradation
    # bound is asserted; the printed buckets carry the actual comparison.
    populated = [m for m, c in zip(mean_pref, counts) if c > 0]
    assert populated
    assert populated[-1] >= populated[0] - 15.0
    assert all(0.0 <= value <= 100.0 for value in mean_pref)
