"""Benchmark: live-traffic cost updates vs full CompiledGraph rebuilds.

Measures, on synthetic city grids:

* **update-apply latency** — one ``TrafficFeed.apply`` batch patching the
  live :class:`~repro.network.compiled.graph.CostStore` in place, vs the cost
  of a full ``CompiledGraph`` recompilation (what every mutation paid before
  the topology/cost split);
* **post-update query latency** — compiled point-to-point Dijkstra right
  after a patch (stamped caches rebuild lazily) vs steady state;

and asserts along the way that compiled answers after the updates are
path-for-path identical to the dict-based reference search on the mutated
network.  Results are merged into the routing benchmark JSON (default
``BENCH_routing.json``) under a ``"traffic"`` key so the CI regression guard
(``check_bench_regression.py``) tracks the patch-vs-recompile speedup across
PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_traffic_updates.py
    PYTHONPATH=src python benchmarks/bench_traffic_updates.py --smoke          # CI
    PYTHONPATH=src python benchmarks/bench_traffic_updates.py --min-speedup 10
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path as FilePath

from repro.network import compiled_disabled, grid_city_network
from repro.network.compiled.graph import CompiledGraph
from repro.routing import CostFeature, cost_function, dijkstra
from repro.traffic import TrafficFeed, synthetic_congestion

FULL_GRIDS = [(30, 30), (60, 60)]
SMOKE_GRIDS = [(12, 12)]


def _queries(network, count: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    ids = sorted(network.vertex_ids())
    pairs = []
    while len(pairs) < count:
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            pairs.append((a, b))
    return pairs


def _time_queries(network, queries, cost) -> float:
    start = time.perf_counter()
    for source, destination in queries:
        dijkstra(network, source, destination, cost)
    return time.perf_counter() - start


def bench_grid(
    rows: int,
    cols: int,
    *,
    batch_fraction: float,
    repeats: int,
    query_count: int,
    seed: int,
) -> dict:
    network = grid_city_network(rows=rows, cols=cols, seed=seed)
    cost = cost_function(CostFeature.TRAVEL_TIME)
    queries = _queries(network, query_count, seed + 1)
    network.compiled()

    # Full rebuild cost: what a cost change paid before the CostStore split.
    rebuild_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        CompiledGraph(network)
        rebuild_times.append(time.perf_counter() - start)
    recompile_seconds = sum(rebuild_times) / len(rebuild_times)

    # Incremental patch cost: one congestion batch through the feed.
    feed = TrafficFeed(network)
    batches = list(
        synthetic_congestion(
            network, seed=seed + 2, fraction=batch_fraction, peak_factor=3.0, steps=repeats
        )
    )
    patch_times = []
    for batch in batches:
        start = time.perf_counter()
        feed.apply(batch)
        patch_times.append(time.perf_counter() - start)
    patch_seconds = sum(patch_times) / len(patch_times)

    # Query latency: steady state, then immediately after one more patch
    # (the first post-update queries rebuild the stamped weight lists).
    _time_queries(network, queries, cost)  # warm
    steady_seconds = _time_queries(network, queries, cost)
    feed.apply(batches[0])
    post_update_seconds = _time_queries(network, queries, cost)

    # Correctness: compiled answers on the mutated network must equal the
    # dict-based reference exactly.
    for source, destination in queries[: min(10, len(queries))]:
        compiled_path = dijkstra(network, source, destination, cost).vertices
        with compiled_disabled():
            reference = dijkstra(network, source, destination, cost).vertices
        if compiled_path != reference:
            raise AssertionError(
                f"{rows}x{cols}: compiled and dict kernels disagree after "
                f"traffic updates on query ({source}, {destination})"
            )

    return {
        "rows": rows,
        "cols": cols,
        "vertices": network.vertex_count,
        "edges": network.edge_count,
        "batch_edges": len(batches[0]),
        "batches": len(batches),
        "recompile_seconds": round(recompile_seconds, 6),
        "patch_seconds": round(patch_seconds, 6),
        "patch_vs_recompile_speedup": (
            round(recompile_seconds / patch_seconds, 3) if patch_seconds else None
        ),
        "queries": len(queries),
        "query_seconds_steady": round(steady_seconds, 6),
        "query_seconds_post_update": round(post_update_seconds, 6),
        "cost_version": network.cost_version,
    }


def merge_report(output: FilePath, traffic_report: dict) -> dict:
    """Merge the traffic section into the (possibly existing) routing JSON."""
    if output.exists():
        report = json.loads(output.read_text())
    else:
        report = {"benchmark": "bench_traffic_updates"}
    report["traffic"] = traffic_report
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="one small grid (CI)")
    parser.add_argument(
        "--batch-fraction",
        type=float,
        default=0.01,
        help="fraction of edges touched per traffic batch (one live-traffic "
        "tick; patch cost is O(touched edges), rebuild cost O(network))",
    )
    parser.add_argument("--repeats", type=int, default=10, help="timing repetitions")
    parser.add_argument("--queries", type=int, default=25, help="OD pairs per grid")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_routing.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless patching beats a full recompile by this factor on "
        "the largest grid (0 = report only); the acceptance bar is 10",
    )
    args = parser.parse_args(argv)

    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    repeats = min(args.repeats, 5) if args.smoke else args.repeats

    traffic_report = {
        "mode": "smoke" if args.smoke else "full",
        "batch_fraction": args.batch_fraction,
        "grids": [],
    }
    for rows, cols in grids:
        print(f"benchmarking traffic updates on {rows}x{cols} grid...", flush=True)
        grid_report = bench_grid(
            rows,
            cols,
            batch_fraction=args.batch_fraction,
            repeats=repeats,
            query_count=args.queries,
            seed=args.seed,
        )
        traffic_report["grids"].append(grid_report)
        print(
            f"  batch of {grid_report['batch_edges']} edges: "
            f"patch {grid_report['patch_seconds'] * 1e3:.3f}ms  "
            f"recompile {grid_report['recompile_seconds'] * 1e3:.3f}ms  "
            f"speedup {grid_report['patch_vs_recompile_speedup']}x"
        )
        print(
            f"  {grid_report['queries']} queries: steady "
            f"{grid_report['query_seconds_steady'] * 1e3:.2f}ms  post-update "
            f"{grid_report['query_seconds_post_update'] * 1e3:.2f}ms"
        )

    largest = traffic_report["grids"][-1]
    speedup = largest["patch_vs_recompile_speedup"]
    traffic_report["largest_grid_patch_speedup"] = speedup

    output = FilePath(args.output)
    report = merge_report(output, traffic_report)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"merged traffic section into {output} (largest-grid patch speedup: {speedup}x)")

    if args.min_speedup and (speedup or 0.0) < args.min_speedup:
        print(
            f"FAIL: patch speedup {speedup}x below required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
