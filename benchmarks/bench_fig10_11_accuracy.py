"""Figs. 10 and 11 — routing accuracy of L2R vs. the baselines.

Fig. 10 reports accuracy under the Eq. 1 path similarity, Fig. 11 under the
Eq. 4 (union) similarity, each broken down by ground-truth travel distance and
by region category (InRegion / InOutRegion / OutRegion), on both data sets.

The paper's qualitative findings: L2R ranks at or near the top, Shortest
degrades with distance, Fastest catches up on long trips, Dom is the best
baseline but the slowest, TRIP sits near Fastest.  The benchmark prints the
full tables and asserts the robust parts of that ordering (L2R well above
Shortest, and within the top group overall).
"""

from __future__ import annotations

from repro.evaluation import format_accuracy_table


def _print_report(report, title, use_eq4):
    print()
    print(format_accuracy_table(report.by_distance(), f"{title} - by distance", use_eq4=use_eq4))
    print()
    print(format_accuracy_table(report.by_region(), f"{title} - by region category", use_eq4=use_eq4))
    print()
    print(format_accuracy_table(report.overall(), f"{title} - overall", use_eq4=use_eq4))


def test_fig10_accuracy_eq1(benchmark, d1_report, d2_report):
    def compute():
        return d1_report.overall(), d2_report.overall()

    benchmark(compute)

    _print_report(d1_report, "Fig. 10 (D1-like, Eq. 1 accuracy)", use_eq4=False)
    _print_report(d2_report, "Fig. 10 (D2-like, Eq. 1 accuracy)", use_eq4=False)

    for report in (d1_report, d2_report):
        l2r = report.mean_accuracy("L2R")
        shortest = report.mean_accuracy("Shortest")
        fastest = report.mean_accuracy("Fastest")
        assert l2r > 0.0
        # L2R must clearly beat the weaker cost-centric baseline ...
        assert l2r >= min(shortest, fastest) * 1.05
        # ... and stay within the top group overall.
        best = max(report.mean_accuracy(a) for a in report.algorithms())
        assert l2r >= 0.70 * best


def test_fig11_accuracy_eq4(benchmark, d1_report, d2_report):
    def compute():
        return d1_report.by_region(), d2_report.by_region()

    benchmark(compute)

    _print_report(d1_report, "Fig. 11 (D1-like, Eq. 4 accuracy)", use_eq4=True)
    _print_report(d2_report, "Fig. 11 (D2-like, Eq. 4 accuracy)", use_eq4=True)

    for report in (d1_report, d2_report):
        for algorithm in report.algorithms():
            eq1 = report.mean_accuracy(algorithm, use_eq4=False)
            eq4 = report.mean_accuracy(algorithm, use_eq4=True)
            # Eq. 4 uses the union in the denominator, so it never exceeds Eq. 1.
            assert eq4 <= eq1 + 1e-9
