"""Benchmark: fault-free overhead and recovery speed of the durability layer.

Write-ahead journaling must be close to free on the fault-free serving
path — that is the contract that lets it stay on in production.  This
benchmark drives the **same mixed serving workload** (a round = a handful
of routed requests plus one effective traffic batch, the shape of a live
serving loop) through two identical stacks over identical networks:

* **plain** — no durability at all (the pre-PR configuration);
* **journaled** — a :class:`~repro.service.DurabilityManager` attached to
  the traffic feed, ``fsync="interval"`` (the production serving policy:
  bounded loss window, no per-batch fsync stall).

Each round is timed back to back through both stacks and the gate compares
the **median paired ratio** — stable on noisy CI machines where a ratio of
two wall-clock sums is not.  The run fails when the journaled stack is
more than ``--max-overhead`` (default 10%) slower.  Two diagnostic numbers
are measured but *not* gated, because they isolate the raw per-append cost
rather than the serving contract: the traffic-apply-only overhead (every
microsecond of pickle+write against an ~100µs apply) and ``fsync="always"``
apply latency (every batch pays a real fsync — hardware truth, not a code
property).

Recovery is timed too: snapshot mid-sequence, journal the rest, then
restore + replay onto a fresh network and verify bit-identity against the
live run's final state.  The merged JSON section reports
``journaled_vs_plain_throughput_ratio`` (higher is better, ~1.0 expected)
so ``check_bench_regression.py`` tracks it like every other ratio.

Usage::

    PYTHONPATH=src python benchmarks/bench_durability.py
    PYTHONPATH=src python benchmarks/bench_durability.py --smoke        # CI
    PYTHONPATH=src python benchmarks/bench_durability.py --max-overhead 0.10
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path as FilePath

from repro.network import grid_city_network
from repro.routing import fastest_path
from repro.service import DurabilityManager, FunctionEngine, RouteRequest, RoutingService
from repro.service.durability import final_state, states_identical
from repro.traffic import TrafficFeed
from repro.traffic.updates import TrafficUpdate

FULL_GRIDS = [(30, 30), (60, 60)]
SMOKE_GRIDS = [(20, 20)]


def _batches(network, count: int, size: int, seed: int):
    """Effective batches: every update scales, so every batch changes costs."""
    rng = random.Random(seed)
    edges = [(e.source, e.target) for e in network.edges()]
    return [
        [
            TrafficUpdate.scale_by(
                *rng.choice(edges), travel_time_s=rng.uniform(1.05, 2.0)
            )
            for _ in range(size)
        ]
        for _ in range(count)
    ]


def _requests(network, count: int, seed: int) -> list[RouteRequest]:
    rng = random.Random(seed)
    ids = sorted(network.vertex_ids())
    requests = []
    while len(requests) < count:
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            requests.append(RouteRequest(source=a, destination=b))
    return requests


class _Stack:
    """One serving stack: network + feed + route service (+ durability)."""

    def __init__(self, make_network, manager: DurabilityManager | None) -> None:
        self.network = make_network()
        self.feed = TrafficFeed(self.network)
        if manager is not None:
            self.feed.attach_journal(manager)
        self.service = RoutingService(enable_cache=False)
        network = self.network
        self.service.register(
            "fastest",
            FunctionEngine(
                network, lambda s, d: fastest_path(network, s, d), name="fastest"
            ),
            default=True,
        )

    def round_timed(self, requests, batch) -> float:
        """One serving round: route every request, then apply the batch."""
        start = time.perf_counter()
        for request in requests:
            response = self.service.route(request)
            if not response.ok:
                raise AssertionError(f"fault-free route failed: {response.error}")
        if not self.feed.apply(batch).applied:
            raise AssertionError("benchmark batch was not effective")
        return time.perf_counter() - start

    def apply_timed(self, batch) -> float:
        start = time.perf_counter()
        if not self.feed.apply(batch).applied:
            raise AssertionError("benchmark batch was not effective")
        return time.perf_counter() - start


def _paired(
    make_network,
    batches,
    wal_dir: FilePath,
    *,
    requests,
    fsync: str,
    repeats: int,
) -> tuple[float, float, float]:
    """Median paired journaled/plain round ratio over ``repeats`` rounds.

    Fresh stacks (and a fresh WAL directory) per repeat so both sides see
    identical cost states at identical batch indices; the within-pair order
    alternates per repeat to cancel any systematic first-mover cost.  With
    ``requests=[]`` a round degenerates to the apply-only diagnostic.
    """
    plain_total = journaled_total = 0.0
    ratios = []
    for round_index in range(repeats):
        plain = _Stack(make_network, None)
        round_dir = wal_dir / f"round-{fsync}-{bool(requests)}-{round_index}"
        with DurabilityManager(round_dir, fsync=fsync) as manager:
            journaled = _Stack(make_network, manager)
            plain_first = round_index % 2 == 0
            for batch in batches:
                if requests:
                    if plain_first:
                        plain_s = plain.round_timed(requests, batch)
                        journaled_s = journaled.round_timed(requests, batch)
                    else:
                        journaled_s = journaled.round_timed(requests, batch)
                        plain_s = plain.round_timed(requests, batch)
                else:
                    if plain_first:
                        plain_s = plain.apply_timed(batch)
                        journaled_s = journaled.apply_timed(batch)
                    else:
                        journaled_s = journaled.apply_timed(batch)
                        plain_s = plain.apply_timed(batch)
                plain_total += plain_s
                journaled_total += journaled_s
                ratios.append(journaled_s / plain_s)
    return (
        plain_total / repeats,
        journaled_total / repeats,
        statistics.median(ratios),
    )


def _recovery_timed(make_network, batches, wal_dir: FilePath) -> dict:
    """Journal everything (snapshot mid-way), then time restore + replay."""
    network = make_network()
    feed = TrafficFeed(network)
    with DurabilityManager(wal_dir, fsync="interval") as manager:
        feed.attach_journal(manager)
        for index, batch in enumerate(batches):
            feed.apply(batch)
            if index == len(batches) // 2:
                manager.snapshot(network)
    reference = final_state(network)

    recovered = make_network()
    start = time.perf_counter()
    with DurabilityManager(wal_dir, fsync="interval") as manager:
        report = manager.recover(recovered, TrafficFeed(recovered))
    elapsed = time.perf_counter() - start
    if not states_identical(final_state(recovered), reference):
        raise AssertionError("recovered state diverged from the live run")
    return {
        "batches": len(batches),
        "snapshot_version": report.snapshot_version,
        "replayed": report.replayed,
        "skipped": report.skipped,
        "recovery_seconds": round(elapsed, 6),
        "verified": report.verified,
        "identical": True,
    }


def bench_grid(
    rows: int,
    cols: int,
    *,
    batch_count: int,
    batch_size: int,
    routes_per_round: int,
    repeats: int,
    seed: int,
) -> dict:
    def make_network():
        return grid_city_network(rows=rows, cols=cols, seed=seed)

    probe = make_network()
    probe.compiled()
    batches = _batches(probe, batch_count, batch_size, seed + 1)
    requests = _requests(probe, routes_per_round, seed + 2)

    with tempfile.TemporaryDirectory(prefix="bench_durability_") as scratch:
        scratch_path = FilePath(scratch)
        plain_s, journaled_s, median_ratio = _paired(
            make_network,
            batches,
            scratch_path,
            requests=requests,
            fsync="interval",
            repeats=repeats,
        )
        # Ungated diagnostics: the raw apply-only overhead (journal cost vs
        # ~100µs apply) and one always-mode round (a real fsync per batch).
        _, _, apply_ratio = _paired(
            make_network,
            batches,
            scratch_path,
            requests=[],
            fsync="interval",
            repeats=max(2, repeats // 2),
        )
        _, always_s, _ = _paired(
            make_network,
            batches,
            scratch_path,
            requests=[],
            fsync="always",
            repeats=1,
        )
        recovery = _recovery_timed(make_network, batches, scratch_path / "recovery")

    overhead = median_ratio - 1.0
    return {
        "rows": rows,
        "cols": cols,
        "vertices": probe.vertex_count,
        "edges": probe.edge_count,
        "batches": len(batches),
        "batch_size": batch_size,
        "routes_per_round": routes_per_round,
        "plain_seconds": round(plain_s, 6),
        "journaled_seconds": round(journaled_s, 6),
        "always_fsync_apply_seconds": round(always_s, 6),
        "journaled_overhead": round(overhead, 4),
        "apply_only_overhead": round(apply_ratio - 1.0, 4),
        "journaled_vs_plain_throughput_ratio": round(1.0 / median_ratio, 3),
        "recovery": recovery,
    }


def merge_report(output: FilePath, durability_report: dict) -> dict:
    """Merge the durability section into the (possibly existing) routing JSON."""
    if output.exists():
        report = json.loads(output.read_text())
    else:
        report = {"benchmark": "bench_durability"}
    report["durability"] = durability_report
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="one small grid (CI)")
    parser.add_argument("--batches", type=int, default=30, help="traffic batches per round")
    parser.add_argument("--batch-size", type=int, default=16, help="updates per batch")
    parser.add_argument(
        "--routes", type=int, default=10, help="routed requests per serving round"
    )
    parser.add_argument(
        "--repeats", type=int, default=8, help="paired timing rounds (interleaved)"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_routing.json")
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.10,
        help="fail when interval-fsync journaling makes a mixed serving round "
        "more than this fraction slower (0.10 = 10%%); 0 disables the gate",
    )
    args = parser.parse_args(argv)

    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    durability_report = {
        "mode": "smoke" if args.smoke else "full",
        "max_overhead": args.max_overhead,
        "fsync_policy": "interval",
        "grids": [],
    }
    for rows, cols in grids:
        print(
            f"benchmarking journaled serving rounds on {rows}x{cols} grid...",
            flush=True,
        )
        grid_report = bench_grid(
            rows,
            cols,
            batch_count=args.batches,
            batch_size=args.batch_size,
            routes_per_round=args.routes,
            repeats=args.repeats,
            seed=args.seed,
        )
        durability_report["grids"].append(grid_report)
        print(
            f"  {grid_report['batches']} rounds x {grid_report['routes_per_round']} "
            f"routes: plain {grid_report['plain_seconds'] * 1e3:.2f}ms  journaled "
            f"{grid_report['journaled_seconds'] * 1e3:.2f}ms  overhead "
            f"{grid_report['journaled_overhead'] * 100:+.1f}%  (apply-only "
            f"{grid_report['apply_only_overhead'] * 100:+.1f}%)  recovery "
            f"{grid_report['recovery']['recovery_seconds'] * 1e3:.2f}ms"
        )

    largest = durability_report["grids"][-1]
    durability_report["largest_grid_journaled_overhead"] = largest[
        "journaled_overhead"
    ]

    output = FilePath(args.output)
    report = merge_report(output, durability_report)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"merged durability section into {output} (largest-grid journaled "
        f"overhead: {largest['journaled_overhead'] * 100:+.1f}%)"
    )

    if args.max_overhead:
        worst = max(
            grid["journaled_overhead"] for grid in durability_report["grids"]
        )
        if worst > args.max_overhead:
            print(
                f"FAIL: journaled serving overhead {worst * 100:.1f}% exceeds "
                f"the {args.max_overhead * 100:.0f}% gate",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
