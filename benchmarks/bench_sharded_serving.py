"""Benchmark: sharded multi-process serving vs the in-process service.

The PR 8 contract: a :class:`~repro.service.ShardedRoutingService` with 4
worker processes must serve a mixed ``route_many`` workload (Shortest +
Fastest engines, random OD pairs) at **>= 2.5x** the single-process
throughput on the 60x60 grid — while staying **100% cost-identical** to the
in-process reference on every sampled query.

Two gates, enforced differently:

* **cost identity** is unconditional — any mismatch fails the run on any
  machine;
* the **speedup gate** needs real parallelism, so it is skipped (with a
  note in the JSON) when fewer than 4 CPU cores are available — a 1-core
  container can only measure IPC overhead, not the scaling contract.

The merged ``sharded`` section reports per-worker-count throughput ratios
plus the cross-shard/in-shard throughput split so
``check_bench_regression.py`` can hold the floors.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded_serving.py
    PYTHONPATH=src python benchmarks/bench_sharded_serving.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_sharded_serving.py --min-speedup 2.5
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import time
from pathlib import Path as FilePath

from repro.baselines.cost_centric import FastestBaseline, ShortestBaseline
from repro.network import grid_city_network
from repro.routing import CostFeature
from repro.service import RouteRequest, RoutingService, ShardedRoutingService
from repro.service.sharding.overlay import path_cost

#: (engine name, cost feature) halves of the mixed workload.
WORKLOAD = (
    ("Shortest", CostFeature.DISTANCE),
    ("Fastest", CostFeature.TRAVEL_TIME),
)

FULL_GRIDS = [(60, 60)]
# The acceptance contract is stated on the 60x60 grid, so smoke keeps it
# and trims the query count instead of the network.
SMOKE_GRIDS = [(60, 60)]

WORKER_COUNTS = (1, 2, 4)


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _requests(network, count: int, seed: int) -> list[RouteRequest]:
    rng = random.Random(seed)
    ids = sorted(network.vertex_ids())
    requests = []
    while len(requests) < count:
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            requests.append(RouteRequest(source=a, destination=b))
    return requests


def _split_pairs(network, plan, count: int, seed: int):
    """Pure in-shard and pure cross-shard request batches of equal size."""
    rng = random.Random(seed)
    ids = sorted(network.vertex_ids())
    in_shard: list[RouteRequest] = []
    cross: list[RouteRequest] = []
    while len(in_shard) < count or len(cross) < count:
        a, b = rng.choice(ids), rng.choice(ids)
        if a == b:
            continue
        bucket = in_shard if plan.shard_of(a) == plan.shard_of(b) else cross
        if len(bucket) < count:
            bucket.append(RouteRequest(source=a, destination=b))
    return in_shard, cross


def _single_process_service(network) -> RoutingService:
    service = RoutingService(enable_cache=False)
    service.register("Shortest", ShortestBaseline(network).as_engine(), default=True)
    service.register("Fastest", FastestBaseline(network).as_engine())
    return service


def _run_workload(service, requests) -> list:
    responses = []
    half = len(requests) // 2
    for (engine, _), chunk in zip(WORKLOAD, (requests[:half], requests[half:])):
        responses.extend(service.route_many(chunk, engine=engine))
    return responses


def _time_workload(service, requests, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        _run_workload(service, requests)
        best = min(best, time.perf_counter() - start)
    return best


def _identity_mismatches(network, responses, reference) -> int:
    mismatches = 0
    half = len(responses) // 2
    for index, (got, want) in enumerate(zip(responses, reference)):
        feature = WORKLOAD[0][1] if index < half else WORKLOAD[1][1]
        got_cost = (
            path_cost(network, tuple(got.path), feature) if got.path else math.inf
        )
        want_cost = (
            path_cost(network, tuple(want.path), feature) if want.path else math.inf
        )
        same_inf = math.isinf(got_cost) and math.isinf(want_cost)
        if not same_inf and not math.isclose(got_cost, want_cost, rel_tol=1e-9):
            mismatches += 1
    return mismatches


def bench_grid(
    rows: int, cols: int, *, query_count: int, repeats: int, seed: int
) -> dict:
    network = grid_city_network(rows=rows, cols=cols, seed=seed)
    network.compiled()
    requests = _requests(network, query_count, seed + 1)

    single = _single_process_service(network)
    _run_workload(single, requests)  # warm lazy caches before timing
    single_seconds = _time_workload(single, requests, repeats)
    reference = _run_workload(single, requests)

    grid_report: dict = {
        "rows": rows,
        "cols": cols,
        "vertices": network.vertex_count,
        "edges": network.edge_count,
        "queries": len(requests),
        "single_process_seconds": round(single_seconds, 6),
        "single_process_rps": round(len(requests) / single_seconds, 1),
        "workers": [],
    }

    for worker_count in WORKER_COUNTS:
        # cache_size=0: the workers' answer caches would otherwise serve the
        # repeated timing rounds from memory, inflating throughput into a
        # cache benchmark (the single-process side runs uncached too).
        with ShardedRoutingService(
            network, shard_count=worker_count, cache_size=0
        ) as service:
            responses = _run_workload(service, requests)  # warm worker caches
            mismatches = _identity_mismatches(network, responses, reference)
            service.reset_stats()
            sharded_seconds = _time_workload(service, requests, repeats)
            stats = service.stats()
            entry = {
                "workers": worker_count,
                "seconds": round(sharded_seconds, 6),
                "rps": round(len(requests) / sharded_seconds, 1),
                "throughput_vs_single": round(single_seconds / sharded_seconds, 3),
                "cross_shard_fraction": round(
                    stats.cross_shard_requests
                    / max(1, stats.cross_shard_requests + stats.in_shard_requests),
                    3,
                ),
                "identity_mismatches": mismatches,
            }
            if worker_count == max(WORKER_COUNTS):
                # Cross-shard overhead: pure cross-shard vs pure in-shard
                # batches through the same deployment (same run, same
                # machine — a robust ratio).
                in_shard, cross = _split_pairs(
                    network, service.plan, max(8, query_count // 4), seed + 2
                )
                service.route_many(in_shard)
                service.route_many(cross)
                in_seconds = _time_workload(service, in_shard + in_shard, repeats)
                cross_seconds = _time_workload(service, cross + cross, repeats)
                grid_report["in_shard_seconds"] = round(in_seconds, 6)
                grid_report["cross_shard_seconds"] = round(cross_seconds, 6)
                grid_report["cross_vs_in_shard_throughput_ratio"] = round(
                    in_seconds / cross_seconds, 3
                )
            grid_report["workers"].append(entry)
            print(
                f"  {worker_count} worker(s): {entry['rps']:.0f} req/s "
                f"({entry['throughput_vs_single']:.2f}x single-process, "
                f"{entry['cross_shard_fraction'] * 100:.0f}% cross-shard, "
                f"{mismatches} identity mismatches)"
            )
    return grid_report


def merge_report(output: FilePath, sharded_report: dict) -> dict:
    """Merge the sharded section into the (possibly existing) routing JSON."""
    if output.exists():
        report = json.loads(output.read_text())
    else:
        report = {"benchmark": "bench_sharded_serving"}
    report["sharded"] = sharded_report
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="trimmed workload (CI)")
    parser.add_argument("--queries", type=int, default=None, help="OD pairs per grid")
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing rounds")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_routing.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.5,
        help="fail when the 4-worker deployment is below this multiple of "
        "single-process throughput (skipped on hosts with < 4 cores); "
        "0 disables the gate",
    )
    args = parser.parse_args(argv)

    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    queries = args.queries or (80 if args.smoke else 240)
    cores = available_cores()

    sharded_report: dict = {
        "mode": "smoke" if args.smoke else "full",
        "cores": cores,
        "worker_counts": list(WORKER_COUNTS),
        "min_speedup": args.min_speedup,
        "speedup_gate_enforced": bool(args.min_speedup) and cores >= max(WORKER_COUNTS),
        "grids": [],
    }
    for rows, cols in grids:
        print(
            f"benchmarking sharded serving on {rows}x{cols} grid "
            f"({queries} queries, {cores} cores)...",
            flush=True,
        )
        sharded_report["grids"].append(
            bench_grid(
                rows, cols, query_count=queries, repeats=args.repeats, seed=args.seed
            )
        )

    largest = sharded_report["grids"][-1]
    best = max(largest["workers"], key=lambda entry: entry["throughput_vs_single"])
    sharded_report["largest_grid_best_speedup"] = best["throughput_vs_single"]

    output = FilePath(args.output)
    report = merge_report(output, sharded_report)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"merged sharded section into {output} "
        f"(best speedup {best['throughput_vs_single']:.2f}x with "
        f"{best['workers']} workers)"
    )

    total_mismatches = sum(
        entry["identity_mismatches"]
        for grid in sharded_report["grids"]
        for entry in grid["workers"]
    )
    if total_mismatches:
        print(
            f"FAIL: {total_mismatches} sharded answers diverged from the "
            "single-process reference costs (identity gate is unconditional)",
            file=sys.stderr,
        )
        return 1

    if sharded_report["speedup_gate_enforced"]:
        four = [
            entry
            for grid in sharded_report["grids"]
            for entry in grid["workers"]
            if entry["workers"] == max(WORKER_COUNTS)
        ]
        worst = min(entry["throughput_vs_single"] for entry in four)
        if worst < args.min_speedup:
            print(
                f"FAIL: {max(WORKER_COUNTS)}-worker throughput is only "
                f"{worst:.2f}x single-process (gate: {args.min_speedup:.1f}x)",
                file=sys.stderr,
            )
            return 1
    elif args.min_speedup:
        print(
            f"note: speedup gate skipped ({cores} cores < {max(WORKER_COUNTS)}; "
            "identity gate still enforced)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
