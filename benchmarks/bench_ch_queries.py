"""Benchmark: compiled contraction-hierarchy queries and live re-weighting.

Measures, on synthetic city grids:

* **CH-CSR vs dict-CH vs compiled Dijkstra query latency** — the same
  queries answered through the compiled hierarchy (elimination-tree hub
  labels over the customizable arc sets), through the dict-of-``_Shortcut``
  walker (``compiled_disabled()``), and through the compiled point-to-point
  Dijkstra for context; asserts along the way that every answer is
  cost-identical to reference Dijkstra;
* **shortcut re-weight vs full rebuild under TrafficUpdate batches** — the
  cost of absorbing a live-traffic batch by re-customizing the compiled
  hierarchy in place (``refresh``) against re-running the witness-search
  construction from scratch, with post-re-weight answers re-verified.

Results are merged into the routing benchmark JSON (default
``BENCH_routing.json``) under a ``"ch"`` key so the CI regression guard
(``check_bench_regression.py``) tracks the speedups across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_ch_queries.py
    PYTHONPATH=src python benchmarks/bench_ch_queries.py --smoke        # CI
    PYTHONPATH=src python benchmarks/bench_ch_queries.py \
        --min-query-speedup 3 --min-reweight-speedup 5
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path as FilePath

from repro.network import compiled_disabled, grid_city_network
from repro.routing import (
    CostFeature,
    build_contraction_hierarchy,
    ch_shortest_path,
    cost_function,
    dijkstra,
)
from repro.traffic import TrafficFeed, TrafficUpdate

# The acceptance grid is 60x60; smoke keeps it (the CI gates are defined on
# it) but trims the query count.
FULL_GRIDS = [(30, 30), (60, 60)]
SMOKE_GRIDS = [(60, 60)]

COST = cost_function(CostFeature.TRAVEL_TIME)


def _queries(network, count: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    ids = sorted(network.vertex_ids())
    pairs = []
    while len(pairs) < count:
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            pairs.append((a, b))
    return pairs


def _path_cost(network, path) -> float:
    return sum(COST(edge) for edge in network.path_edges(path.vertices))


def _assert_cost_identical(network, hierarchy, queries, label: str) -> None:
    for source, destination in queries:
        candidate = ch_shortest_path(network, source, destination, hierarchy)
        reference = dijkstra(network, source, destination, COST)
        expected = _path_cost(network, reference)
        got = _path_cost(network, candidate)
        if abs(got - expected) > 1e-6 * max(1.0, expected):
            raise AssertionError(
                f"{label}: CH answer costs {got}, reference {expected} "
                f"on query ({source}, {destination})"
            )


def _congestion_batch(network, fraction: float, seed: int) -> list[TrafficUpdate]:
    rng = random.Random(seed)
    count = max(4, int(network.edge_count * fraction))
    edges = rng.sample(list(network.edges()), count)
    return [
        TrafficUpdate.scale_by(
            edge.source, edge.target, travel_time_s=rng.uniform(1.2, 3.0)
        )
        for edge in edges
    ]


def bench_grid(
    rows: int, cols: int, *, query_count: int, batch_fraction: float, seed: int
) -> dict:
    network = grid_city_network(rows=rows, cols=cols, seed=seed)
    queries = _queries(network, query_count, seed + 1)

    build_start = time.perf_counter()
    hierarchy = network.prepare_hierarchy(CostFeature.TRAVEL_TIME)
    build_seconds = time.perf_counter() - build_start

    # First compiled query pays contraction + customization + warm labels.
    compile_start = time.perf_counter()
    ch_shortest_path(network, queries[0][0], queries[0][1], hierarchy)
    compile_seconds = time.perf_counter() - compile_start

    # Correctness first, on both the compiled path and the dict walker.
    _assert_cost_identical(network, hierarchy, queries[: min(15, len(queries))], f"{rows}x{cols}")
    with compiled_disabled():
        _assert_cost_identical(
            network, hierarchy, queries[: min(5, len(queries))], f"{rows}x{cols} dict"
        )

    for source, destination in queries:  # warm label caches
        ch_shortest_path(network, source, destination, hierarchy)
    start = time.perf_counter()
    for source, destination in queries:
        ch_shortest_path(network, source, destination, hierarchy)
    csr_seconds = time.perf_counter() - start

    with compiled_disabled():
        start = time.perf_counter()
        for source, destination in queries:
            ch_shortest_path(network, source, destination, hierarchy)
        dict_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for source, destination in queries:
        dijkstra(network, source, destination, COST)
    dijkstra_seconds = time.perf_counter() - start

    # Live traffic: re-weight in place vs rebuild from scratch.
    feed = TrafficFeed(network)
    reweight_times = []
    for round_ in range(3):
        feed.apply(_congestion_batch(network, batch_fraction, seed + 10 + round_))
        start = time.perf_counter()
        hierarchy.refresh(network)
        reweight_times.append(time.perf_counter() - start)
    _assert_cost_identical(
        network, hierarchy, queries[: min(10, len(queries))], f"{rows}x{cols} post-reweight"
    )
    reweight_seconds = sum(reweight_times) / len(reweight_times)

    start = time.perf_counter()
    build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
    rebuild_seconds = time.perf_counter() - start

    compiled = hierarchy._compiled
    return {
        "rows": rows,
        "cols": cols,
        "vertices": network.vertex_count,
        "edges": network.edge_count,
        "queries": len(queries),
        "build_seconds": round(build_seconds, 6),
        "ch_compile_seconds": round(compile_seconds, 6),
        "ch_arcs": compiled.arc_count if compiled is not None else None,
        "csr_seconds": round(csr_seconds, 6),
        "dict_ch_seconds": round(dict_seconds, 6),
        "dijkstra_seconds": round(dijkstra_seconds, 6),
        "csr_vs_dict_ch_speedup": (
            round(dict_seconds / csr_seconds, 3) if csr_seconds else None
        ),
        "csr_vs_dijkstra_speedup": (
            round(dijkstra_seconds / csr_seconds, 3) if csr_seconds else None
        ),
        "reweight_batches": len(reweight_times),
        "reweight_seconds": round(reweight_seconds, 6),
        "rebuild_seconds": round(rebuild_seconds, 6),
        "reweight_vs_rebuild_speedup": (
            round(rebuild_seconds / reweight_seconds, 3) if reweight_seconds else None
        ),
        "hierarchy_reweights": hierarchy.reweight_count,
    }


def merge_report(output: FilePath, ch_report: dict) -> dict:
    """Merge the CH section into the (possibly existing) routing JSON."""
    if output.exists():
        report = json.loads(output.read_text())
    else:
        report = {"benchmark": "bench_ch_queries"}
    report["ch"] = ch_report
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="60x60 grid only, fewer queries (CI)")
    parser.add_argument("--queries", type=int, default=60, help="OD pairs per grid")
    parser.add_argument(
        "--batch-fraction",
        type=float,
        default=0.01,
        help="fraction of edges touched per TrafficUpdate batch",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_routing.json")
    parser.add_argument(
        "--min-query-speedup",
        type=float,
        default=0.0,
        help="fail unless CH-CSR beats the dict-CH walker by this factor on "
        "the largest grid (0 = report only); the acceptance bar and the CI "
        "smoke gate are 3",
    )
    parser.add_argument(
        "--min-reweight-speedup",
        type=float,
        default=0.0,
        help="fail unless the in-place shortcut re-weight beats a full "
        "rebuild by this factor on the largest grid (0 = report only); the "
        "acceptance bar and the CI smoke gate are 5",
    )
    args = parser.parse_args(argv)

    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    queries = min(args.queries, 30) if args.smoke else args.queries

    ch_report = {
        "mode": "smoke" if args.smoke else "full",
        "batch_fraction": args.batch_fraction,
        "grids": [],
    }
    for rows, cols in grids:
        print(f"benchmarking CH on {rows}x{cols} grid ({queries} queries)...", flush=True)
        grid_report = bench_grid(
            rows,
            cols,
            query_count=queries,
            batch_fraction=args.batch_fraction,
            seed=args.seed,
        )
        ch_report["grids"].append(grid_report)
        print(
            f"  build {grid_report['build_seconds']:.2f}s  "
            f"compile {grid_report['ch_compile_seconds']:.2f}s  "
            f"arcs {grid_report['ch_arcs']}"
        )
        print(
            f"  queries: CSR {grid_report['csr_seconds']:.4f}s  "
            f"dict-CH {grid_report['dict_ch_seconds']:.4f}s  "
            f"dijkstra {grid_report['dijkstra_seconds']:.4f}s  "
            f"(CSR vs dict {grid_report['csr_vs_dict_ch_speedup']}x, "
            f"vs dijkstra {grid_report['csr_vs_dijkstra_speedup']}x)"
        )
        print(
            f"  traffic: reweight {grid_report['reweight_seconds'] * 1e3:.1f}ms  "
            f"rebuild {grid_report['rebuild_seconds']:.2f}s  "
            f"({grid_report['reweight_vs_rebuild_speedup']}x)"
        )

    largest = ch_report["grids"][-1]
    query_speedup = largest["csr_vs_dict_ch_speedup"]
    reweight_speedup = largest["reweight_vs_rebuild_speedup"]
    ch_report["largest_grid_query_speedup"] = query_speedup
    ch_report["largest_grid_reweight_speedup"] = reweight_speedup

    output = FilePath(args.output)
    report = merge_report(output, ch_report)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"merged ch section into {output} (query speedup {query_speedup}x, "
        f"reweight {reweight_speedup}x)"
    )

    failed = False
    if args.min_query_speedup and (query_speedup or 0.0) < args.min_query_speedup:
        print(
            f"FAIL: CH-CSR query speedup {query_speedup}x below required "
            f"{args.min_query_speedup}x",
            file=sys.stderr,
        )
        failed = True
    if args.min_reweight_speedup and (reweight_speedup or 0.0) < args.min_reweight_speedup:
        print(
            f"FAIL: shortcut re-weight speedup {reweight_speedup}x below required "
            f"{args.min_reweight_speedup}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
