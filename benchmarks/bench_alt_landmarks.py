"""Benchmark: ALT goal-directed search and batched ``route_many``.

Measures, on synthetic city grids:

* **ALT-A\\* vs plain compiled A\\*** — the same queries through the compiled
  A* kernel with the ALT landmark heuristic (the default) and with it
  disabled (per-vertex geometric heuristic callbacks), plus the dict-based
  reference for context; asserts along the way that every ALT answer is
  cost-identical to reference Dijkstra;
* **ALT bidirectional vs plain compiled bidirectional** — both frontiers on
  landmark-reduced costs vs the exact reference mirror;
* **batched vs threaded ``route_many``** — one ``RoutingService`` answering
  the same request batch through the partitioned ``dijkstra_many`` path and
  through the legacy thread-pool fan-out (cache disabled for fairness),
  asserting identical paths.

Results are merged into the routing benchmark JSON (default
``BENCH_routing.json``) under an ``"alt"`` key so the CI regression guard
(``check_bench_regression.py``) tracks the speedups across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_alt_landmarks.py
    PYTHONPATH=src python benchmarks/bench_alt_landmarks.py --smoke          # CI
    PYTHONPATH=src python benchmarks/bench_alt_landmarks.py --min-speedup 1.5
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path as FilePath

from repro.baselines import FastestBaseline
from repro.network import alt_disabled, compiled_disabled, grid_city_network
from repro.routing import (
    CostFeature,
    astar,
    bidirectional_dijkstra,
    cost_function,
    dijkstra,
    heuristic_for,
)
from repro.service import AlgorithmEngine, RouteRequest, RoutingService

# The acceptance grid is 60x60; smoke keeps it (the CI gate is defined on
# it) but trims the query count.
FULL_GRIDS = [(30, 30), (60, 60)]
SMOKE_GRIDS = [(60, 60)]


def _queries(network, count: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    ids = sorted(network.vertex_ids())
    pairs = []
    while len(pairs) < count:
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            pairs.append((a, b))
    return pairs


def _time_astar(network, queries, cost) -> float:
    start = time.perf_counter()
    for source, destination in queries:
        astar(
            network,
            source,
            destination,
            cost,
            heuristic_for(network, destination, CostFeature.TRAVEL_TIME),
        )
    return time.perf_counter() - start


def _time_bidirectional(network, queries, cost) -> float:
    start = time.perf_counter()
    for source, destination in queries:
        bidirectional_dijkstra(network, source, destination, cost)
    return time.perf_counter() - start


def bench_grid(rows: int, cols: int, *, query_count: int, landmarks: int, seed: int) -> dict:
    network = grid_city_network(rows=rows, cols=cols, seed=seed)
    cost = cost_function(CostFeature.TRAVEL_TIME)
    queries = _queries(network, query_count, seed + 1)

    build_start = time.perf_counter()
    network.prepare_landmarks(cost, count=landmarks)
    landmark_build_seconds = time.perf_counter() - build_start

    # Correctness first: every ALT answer must cost exactly what the
    # reference Dijkstra's answer costs (paths may differ among ties).
    for source, destination in queries[: min(15, len(queries))]:
        alt_path = astar(network, source, destination, cost)
        bidi_path = bidirectional_dijkstra(network, source, destination, cost)
        with compiled_disabled():
            reference = dijkstra(network, source, destination, cost)
        expected = network.path_travel_time_s(reference.vertices)
        for candidate in (alt_path, bidi_path):
            got = network.path_travel_time_s(candidate.vertices)
            if abs(got - expected) > 1e-6 * max(1.0, expected):
                raise AssertionError(
                    f"{rows}x{cols}: ALT answer costs {got}, reference {expected} "
                    f"on query ({source}, {destination})"
                )

    _time_astar(network, queries, cost)  # warm (tables, weight lists)
    astar_alt = _time_astar(network, queries, cost)
    with alt_disabled():
        _time_astar(network, queries[:5], cost)
        astar_plain = _time_astar(network, queries, cost)
    with compiled_disabled():
        astar_dict = _time_astar(network, queries, cost)

    bidi_alt = _time_bidirectional(network, queries, cost)
    with alt_disabled():
        bidi_plain = _time_bidirectional(network, queries, cost)

    return {
        "rows": rows,
        "cols": cols,
        "vertices": network.vertex_count,
        "edges": network.edge_count,
        "queries": len(queries),
        "landmark_build_seconds": round(landmark_build_seconds, 6),
        "astar_dict_seconds": round(astar_dict, 6),
        "astar_plain_seconds": round(astar_plain, 6),
        "astar_alt_seconds": round(astar_alt, 6),
        "alt_vs_plain_astar_speedup": (
            round(astar_plain / astar_alt, 3) if astar_alt else None
        ),
        "alt_vs_dict_astar_speedup": (
            round(astar_dict / astar_alt, 3) if astar_alt else None
        ),
        "bidirectional_plain_seconds": round(bidi_plain, 6),
        "bidirectional_alt_seconds": round(bidi_alt, 6),
        "alt_vs_plain_bidirectional_speedup": (
            round(bidi_plain / bidi_alt, 3) if bidi_alt else None
        ),
    }


def _compare_route_many(service, requests, rows: int, cols: int) -> tuple[float, float, int]:
    service.route_many(requests[: min(8, len(requests))])  # warm
    start = time.perf_counter()
    batched = service.route_many(requests)
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    threaded = service.route_many(requests, batch_min_size=len(requests) + 1)
    threaded_seconds = time.perf_counter() - start

    for a, b in zip(batched, threaded):
        if not (a.ok and b.ok) or a.path.vertices != b.path.vertices:
            raise AssertionError(
                f"{rows}x{cols}: batched and threaded route_many disagree on "
                f"({a.request.source}, {a.request.destination})"
            )
    return threaded_seconds, batched_seconds, sum(1 for r in batched if r.batched)


def bench_route_many(rows: int, cols: int, *, request_count: int, seed: int) -> dict:
    network = grid_city_network(rows=rows, cols=cols, seed=seed)
    service = RoutingService(enable_cache=False)
    service.register("Fastest", AlgorithmEngine(FastestBaseline(network)))

    # Worst case for batching: every request has its own source, so the
    # batch saves only per-request service/thread overhead.
    distinct = [
        RouteRequest(source=a, destination=b)
        for a, b in _queries(network, request_count, seed + 2)
    ]
    threaded_seconds, batched_seconds, batch_answered = _compare_route_many(
        service, distinct, rows, cols
    )

    # Dispatch-style workload: requests cluster on a few pickup hotspots, so
    # the batch collapses to one SSSP per distinct source.
    rng = random.Random(seed + 3)
    ids = sorted(network.vertex_ids())
    hotspots = rng.sample(ids, max(2, request_count // 8))
    shared = []
    while len(shared) < request_count:
        source = rng.choice(hotspots)
        destination = rng.choice(ids)
        if destination != source:
            shared.append(RouteRequest(source=source, destination=destination))
    shared_threaded, shared_batched, _ = _compare_route_many(service, shared, rows, cols)

    service.close()
    return {
        "requests": request_count,
        "batched_requests": batch_answered,
        "threaded_seconds": round(threaded_seconds, 6),
        "batched_seconds": round(batched_seconds, 6),
        "batched_vs_threaded_speedup": (
            round(threaded_seconds / batched_seconds, 3) if batched_seconds else None
        ),
        "shared_source_threaded_seconds": round(shared_threaded, 6),
        "shared_source_batched_seconds": round(shared_batched, 6),
        "shared_source_batched_vs_threaded_speedup": (
            round(shared_threaded / shared_batched, 3) if shared_batched else None
        ),
    }


def merge_report(output: FilePath, alt_report: dict) -> dict:
    """Merge the ALT section into the (possibly existing) routing JSON."""
    if output.exists():
        report = json.loads(output.read_text())
    else:
        report = {"benchmark": "bench_alt_landmarks"}
    report["alt"] = alt_report
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="60x60 grid only, fewer queries (CI)")
    parser.add_argument("--queries", type=int, default=40, help="OD pairs per grid")
    parser.add_argument("--landmarks", type=int, default=8, help="landmarks per table")
    parser.add_argument(
        "--batch-requests", type=int, default=64, help="route_many batch size (>= 32 for the acceptance bar)"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_routing.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless ALT-A* beats plain compiled A* by this factor on "
        "the largest grid (0 = report only); the acceptance bar is 2, the "
        "CI smoke gate 1.5",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=0.0,
        help="fail unless batched route_many beats the threaded fan-out by "
        "this factor on the largest grid's hotspot (shared-source) workload "
        "(0 = report only)",
    )
    args = parser.parse_args(argv)

    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    queries = min(args.queries, 25) if args.smoke else args.queries

    alt_report = {
        "mode": "smoke" if args.smoke else "full",
        "landmarks": args.landmarks,
        "strategy": "farthest",
        "grids": [],
    }
    for rows, cols in grids:
        print(f"benchmarking ALT on {rows}x{cols} grid ({queries} queries)...", flush=True)
        grid_report = bench_grid(
            rows, cols, query_count=queries, landmarks=args.landmarks, seed=args.seed
        )
        grid_report["route_many"] = bench_route_many(
            rows, cols, request_count=args.batch_requests, seed=args.seed
        )
        alt_report["grids"].append(grid_report)
        print(
            f"  astar: dict {grid_report['astar_dict_seconds']:.4f}s  "
            f"plain {grid_report['astar_plain_seconds']:.4f}s  "
            f"ALT {grid_report['astar_alt_seconds']:.4f}s  "
            f"(ALT vs plain {grid_report['alt_vs_plain_astar_speedup']}x, "
            f"vs dict {grid_report['alt_vs_dict_astar_speedup']}x; "
            f"table build {grid_report['landmark_build_seconds'] * 1e3:.1f}ms)"
        )
        print(
            f"  bidirectional: plain {grid_report['bidirectional_plain_seconds']:.4f}s  "
            f"ALT {grid_report['bidirectional_alt_seconds']:.4f}s  "
            f"({grid_report['alt_vs_plain_bidirectional_speedup']}x)"
        )
        rm = grid_report["route_many"]
        print(
            f"  route_many x{rm['requests']}: threaded {rm['threaded_seconds']:.4f}s  "
            f"batched {rm['batched_seconds']:.4f}s  "
            f"({rm['batched_vs_threaded_speedup']}x distinct sources, "
            f"{rm['shared_source_batched_vs_threaded_speedup']}x hotspot sources; "
            f"{rm['batched_requests']}/{rm['requests']} batch-answered)"
        )

    largest = alt_report["grids"][-1]
    astar_speedup = largest["alt_vs_plain_astar_speedup"]
    # The headline batch ratio is the hotspot (shared-source) workload: with
    # fully distinct sources the batch saves only per-request overhead
    # (~1.1x, recorded per grid); source reuse is where dijkstra_many wins.
    batch_speedup = largest["route_many"]["shared_source_batched_vs_threaded_speedup"]
    alt_report["largest_grid_alt_astar_speedup"] = astar_speedup
    alt_report["largest_grid_batched_route_many_speedup"] = batch_speedup

    output = FilePath(args.output)
    report = merge_report(output, alt_report)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"merged alt section into {output} (ALT-A* speedup {astar_speedup}x, "
        f"batched route_many {batch_speedup}x)"
    )

    failed = False
    if args.min_speedup and (astar_speedup or 0.0) < args.min_speedup:
        print(
            f"FAIL: ALT-A* speedup {astar_speedup}x below required {args.min_speedup}x",
            file=sys.stderr,
        )
        failed = True
    if args.min_batch_speedup and (batch_speedup or 0.0) < args.min_batch_speedup:
        print(
            f"FAIL: batched route_many speedup {batch_speedup}x below required "
            f"{args.min_batch_speedup}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
