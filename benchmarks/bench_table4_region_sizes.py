"""Table IV — region sizes produced by the trajectory-based clustering.

Reproduces the breakdown of region convex-hull areas into bands with the
maximum diameter per band.  The paper's key observation is that the
modularity-based clustering keeps most regions small (under 2 km^2) with only
a few large regions; the same shape should hold here.
"""

from __future__ import annotations

from repro.regions import format_region_size_table, region_size_table

D1_BANDS = ((0.0, 2.0), (2.0, 10.0), (10.0, 100.0), (100.0, None))
D2_BANDS = ((0.0, 2.0), (2.0, 5.0), (5.0, 10.0), (10.0, None))


def test_table4_region_sizes(benchmark, d1, d2):
    scenario_d1, _, pipeline_d1 = d1
    scenario_d2, _, pipeline_d2 = d2

    regions_d1 = list(pipeline_d1.region_graph.regions())
    regions_d2 = list(pipeline_d2.region_graph.regions())

    def compute():
        return (
            region_size_table(regions_d1, scenario_d1.network, D1_BANDS),
            region_size_table(regions_d2, scenario_d2.network, D2_BANDS),
        )

    rows_d1, rows_d2 = benchmark(compute)

    print()
    print(format_region_size_table(rows_d1, title="Table IV (D1-like): region sizes"))
    print()
    print(format_region_size_table(rows_d2, title="Table IV (D2-like): region sizes"))

    total_d1 = sum(row.count for row in rows_d1)
    total_d2 = sum(row.count for row in rows_d2)
    assert total_d1 == len(regions_d1)
    assert total_d2 == len(regions_d2)
    # Shape check: small regions dominate, as in the paper.
    assert rows_d1[0].count >= rows_d1[-1].count
    assert rows_d2[0].count >= rows_d2[-1].count
