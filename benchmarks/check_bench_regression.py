"""CI guard: fail when a benchmark speedup ratio regresses past tolerance.

Compares a freshly produced routing benchmark JSON against a committed
baseline and fails when any *speedup ratio* — compiled-vs-dict per kernel
(``bench_compiled_graph.py``), patch-vs-recompile for traffic updates
(``bench_traffic_updates.py``), the fault-free plain-vs-resilient
throughput ratio (``bench_resilience.py``), or the loopback-TCP-vs-queue
transport ratio (``bench_multinode.py``) — drops by more than ``--max-slowdown``
(default 30%).  Ratios, not absolute timings, are compared: both sides of a
ratio come from the same machine and run, which makes the guard robust to CI
hardware variance.  Only grids present in both reports (matched by
``rows x cols``) are compared, so a smoke baseline guards smoke runs.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline benchmarks/BENCH_baseline_smoke.json \
        --fresh BENCH_routing.json --max-slowdown 0.30
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def collect_ratios(report: dict) -> dict[str, float]:
    """Flatten every named speedup ratio of one benchmark report."""
    ratios: dict[str, float] = {}
    for grid in report.get("grids", []):
        label = f"{grid['rows']}x{grid['cols']}"
        for kernel, numbers in grid.get("kernels", {}).items():
            speedup = numbers.get("speedup")
            if speedup:
                ratios[f"{label}/{kernel}"] = float(speedup)
    for grid in report.get("traffic", {}).get("grids", []):
        label = f"{grid['rows']}x{grid['cols']}"
        speedup = grid.get("patch_vs_recompile_speedup")
        if speedup:
            ratios[f"traffic/{label}/patch_vs_recompile"] = float(speedup)
    for grid in report.get("alt", {}).get("grids", []):
        label = f"{grid['rows']}x{grid['cols']}"
        for name, short in (
            ("alt_vs_plain_astar_speedup", "astar"),
            ("alt_vs_plain_bidirectional_speedup", "bidirectional"),
        ):
            speedup = grid.get(name)
            if speedup:
                ratios[f"alt/{label}/{short}"] = float(speedup)
        batch = grid.get("route_many", {}).get("shared_source_batched_vs_threaded_speedup")
        if batch:
            ratios[f"alt/{label}/route_many_shared_source"] = float(batch)
    for grid in report.get("ch", {}).get("grids", []):
        label = f"{grid['rows']}x{grid['cols']}"
        for name, short in (
            ("csr_vs_dict_ch_speedup", "query"),
            ("reweight_vs_rebuild_speedup", "reweight"),
        ):
            speedup = grid.get(name)
            if speedup:
                ratios[f"ch/{label}/{short}"] = float(speedup)
    for grid in report.get("resilience", {}).get("grids", []):
        label = f"{grid['rows']}x{grid['cols']}"
        # plain/resilient throughput on the fault-free path: ~1.0 when the
        # resilience layer is near-free, shrinking as its overhead grows —
        # higher-is-better like every other ratio here.
        ratio = grid.get("faultfree_throughput_ratio")
        if ratio:
            ratios[f"resilience/{label}/faultfree_throughput"] = float(ratio)
    for grid in report.get("durability", {}).get("grids", []):
        label = f"{grid['rows']}x{grid['cols']}"
        # plain/journaled throughput on the mixed serving workload: ~1.0
        # when write-ahead journaling is near-free, shrinking as its
        # overhead grows — higher-is-better like every other ratio here.
        ratio = grid.get("journaled_vs_plain_throughput_ratio")
        if ratio:
            ratios[f"durability/{label}/journaled_throughput"] = float(ratio)
    for grid in report.get("sharded", {}).get("grids", []):
        label = f"{grid['rows']}x{grid['cols']}"
        # Sharded-vs-single-process throughput per worker count, plus the
        # cross-shard/in-shard throughput split — all same-run, same-machine
        # ratios (higher is better).
        for entry in grid.get("workers", []):
            speedup = entry.get("throughput_vs_single")
            if speedup:
                ratios[f"sharded/{label}/{entry['workers']}w_throughput"] = float(speedup)
        split = grid.get("cross_vs_in_shard_throughput_ratio")
        if split:
            ratios[f"sharded/{label}/cross_vs_in_shard"] = float(split)
    for grid in report.get("multinode", {}).get("grids", []):
        label = f"{grid['rows']}x{grid['cols']}"
        # Loopback-TCP vs queue throughput on the identical workload
        # (bench_multinode.py): same run, same machine, higher is better.
        # The absolute failover-blackout gate lives in the bench itself.
        ratio = grid.get("tcp_vs_queue_throughput_ratio")
        if ratio:
            ratios[f"multinode/{label}/tcp_vs_queue_throughput"] = float(ratio)
    return ratios


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--fresh", required=True, help="freshly produced JSON")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=0.30,
        help="tolerated fractional drop of any speedup ratio (0.30 = 30%%)",
    )
    args = parser.parse_args(argv)

    baseline = collect_ratios(json.loads(Path(args.baseline).read_text()))
    fresh = collect_ratios(json.loads(Path(args.fresh).read_text()))

    comparable = sorted(set(baseline) & set(fresh))
    if not comparable:
        print(
            f"ERROR: no comparable speedup ratios between {args.baseline} "
            f"({sorted(baseline)}) and {args.fresh} ({sorted(fresh)}); "
            "the baseline grids must match the fresh run's grids",
            file=sys.stderr,
        )
        return 2

    failures = []
    for key in comparable:
        floor = baseline[key] * (1.0 - args.max_slowdown)
        status = "ok" if fresh[key] >= floor else "REGRESSED"
        print(
            f"  {key:>40}: baseline {baseline[key]:7.3f}x  fresh {fresh[key]:7.3f}x  "
            f"floor {floor:6.3f}x  {status}"
        )
        if fresh[key] < floor:
            failures.append(key)

    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print(f"note: ratios only in baseline (not compared): {missing}")

    if failures:
        print(
            f"FAIL: {len(failures)} speedup ratio(s) dropped more than "
            f"{args.max_slowdown:.0%} below baseline: {failures}",
            file=sys.stderr,
        )
        return 1
    print(f"bench regression guard passed ({len(comparable)} ratios within tolerance)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
