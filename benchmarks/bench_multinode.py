"""Benchmark: loopback-TCP shard serving vs queues, and failover blackout.

Two numbers for the fault-tolerant multi-node transport:

* ``tcp_vs_queue_throughput_ratio`` — the identical mixed ``route_many``
  workload through the same 2-shard deployment over ``transport="tcp"``
  (loopback) vs ``transport="queue"``, as ``queue_seconds / tcp_seconds``.
  Both sides come from the same run and machine, so the ratio is robust to
  CI hardware variance; loopback TCP pays framing + syscalls per message,
  so the ratio sits below 1 and ``check_bench_regression.py`` holds a
  conservative floor under it.
* ``failover_blackout_seconds`` — with ``replicas=2`` over TCP, the primary
  of shard 0 is crashed mid-batch and that batch's wall time is compared
  to the undisturbed batch: the excess is the blackout the heartbeat /
  failover / respawn machinery leaves.  Gated **absolutely** in-bench via
  ``--max-blackout-s`` (the contract is "failover costs at most N seconds",
  not "no slower than last time").

The cost-identity gate is unconditional on every batch, including the one
served mid-failover: any divergence from the single-process reference fails
the run on any machine.

Usage::

    PYTHONPATH=src python benchmarks/bench_multinode.py
    PYTHONPATH=src python benchmarks/bench_multinode.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_multinode.py --max-blackout-s 5
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import time
from pathlib import Path as FilePath

from repro.baselines.cost_centric import FastestBaseline, ShortestBaseline
from repro.network import grid_city_network
from repro.routing import CostFeature
from repro.service import RouteRequest, RoutingService, ShardedRoutingService
from repro.service.sharding.overlay import path_cost

#: (engine name, cost feature) halves of the mixed workload.
WORKLOAD = (
    ("Shortest", CostFeature.DISTANCE),
    ("Fastest", CostFeature.TRAVEL_TIME),
)

FULL_GRIDS = [(30, 30)]
# Transport overhead per message is network-size independent; smoke keeps a
# small grid so the TCP deployments boot and drain quickly on CI runners.
SMOKE_GRIDS = [(12, 12)]

SHARD_COUNT = 2


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _requests(network, count: int, seed: int) -> list[RouteRequest]:
    rng = random.Random(seed)
    ids = sorted(network.vertex_ids())
    requests = []
    while len(requests) < count:
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            requests.append(RouteRequest(source=a, destination=b))
    return requests


def _single_process_service(network) -> RoutingService:
    service = RoutingService(enable_cache=False)
    service.register("Shortest", ShortestBaseline(network).as_engine(), default=True)
    service.register("Fastest", FastestBaseline(network).as_engine())
    return service


def _run_workload(service, requests) -> list:
    responses = []
    half = len(requests) // 2
    for (engine, _), chunk in zip(WORKLOAD, (requests[:half], requests[half:])):
        responses.extend(service.route_many(chunk, engine=engine))
    return responses


def _time_workload(service, requests, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        _run_workload(service, requests)
        best = min(best, time.perf_counter() - start)
    return best


def _identity_mismatches(network, responses, reference) -> int:
    mismatches = 0
    half = len(responses) // 2
    for index, (got, want) in enumerate(zip(responses, reference)):
        feature = WORKLOAD[0][1] if index < half else WORKLOAD[1][1]
        got_cost = (
            path_cost(network, tuple(got.path), feature) if got.path else math.inf
        )
        want_cost = (
            path_cost(network, tuple(want.path), feature) if want.path else math.inf
        )
        same_inf = math.isinf(got_cost) and math.isinf(want_cost)
        if not same_inf and not math.isclose(got_cost, want_cost, rel_tol=1e-9):
            mismatches += 1
    return mismatches


def _transport_seconds(
    network, requests, reference, *, transport: str, repeats: int
) -> tuple[float, int]:
    """Best-of workload seconds plus identity mismatches for one transport."""
    with ShardedRoutingService(
        network, shard_count=SHARD_COUNT, cache_size=0, transport=transport
    ) as service:
        responses = _run_workload(service, requests)  # warm lazy worker state
        mismatches = _identity_mismatches(network, responses, reference)
        seconds = _time_workload(service, requests, repeats)
    return seconds, mismatches


def _failover_blackout(
    network, requests, reference, *, repeats: int
) -> dict:
    """Crash shard 0's primary mid-batch; report the wall-time excess."""
    with ShardedRoutingService(
        network,
        shard_count=SHARD_COUNT,
        cache_size=0,
        transport="tcp",
        replicas=2,
    ) as service:
        responses = _run_workload(service, requests)
        warm_mismatches = _identity_mismatches(network, responses, reference)
        baseline_seconds = _time_workload(service, requests, repeats)

        # One shot, not best-of: the injected crash fires exactly once, on
        # the next RouteWork shard 0's primary serves.
        service.inject_crash(0, phase="work")
        start = time.perf_counter()
        crashed_responses = _run_workload(service, requests)
        failover_seconds = time.perf_counter() - start
        failover_mismatches = _identity_mismatches(
            network, crashed_responses, reference
        )
        stats = service.stats()
    return {
        "replicas": 2,
        "baseline_batch_seconds": round(baseline_seconds, 6),
        "failover_batch_seconds": round(failover_seconds, 6),
        "failover_blackout_seconds": round(
            max(0.0, failover_seconds - baseline_seconds), 6
        ),
        "failovers": stats.failovers,
        "worker_restarts": stats.worker_restarts,
        "identity_mismatches": warm_mismatches + failover_mismatches,
    }


def bench_grid(rows: int, cols: int, *, query_count: int, repeats: int, seed: int) -> dict:
    network = grid_city_network(rows=rows, cols=cols, seed=seed)
    network.compiled()
    requests = _requests(network, query_count, seed + 1)

    single = _single_process_service(network)
    reference = _run_workload(single, requests)

    queue_seconds, queue_mismatches = _transport_seconds(
        network, requests, reference, transport="queue", repeats=repeats
    )
    tcp_seconds, tcp_mismatches = _transport_seconds(
        network, requests, reference, transport="tcp", repeats=repeats
    )
    grid_report: dict = {
        "rows": rows,
        "cols": cols,
        "vertices": network.vertex_count,
        "edges": network.edge_count,
        "queries": len(requests),
        "queue_seconds": round(queue_seconds, 6),
        "tcp_seconds": round(tcp_seconds, 6),
        "tcp_vs_queue_throughput_ratio": round(queue_seconds / tcp_seconds, 3),
        "identity_mismatches": queue_mismatches + tcp_mismatches,
    }
    print(
        f"  transports: queue {len(requests) / queue_seconds:.0f} req/s, "
        f"tcp {len(requests) / tcp_seconds:.0f} req/s "
        f"(ratio {grid_report['tcp_vs_queue_throughput_ratio']:.2f})"
    )

    failover = _failover_blackout(network, requests, reference, repeats=repeats)
    failover_mismatches = failover.pop("identity_mismatches")
    grid_report.update(failover)
    grid_report["identity_mismatches"] += failover_mismatches
    print(
        f"  failover: blackout {grid_report['failover_blackout_seconds']:.3f}s "
        f"({grid_report['failovers']} failover(s), "
        f"{grid_report['worker_restarts']} restart(s), "
        f"{grid_report['identity_mismatches']} identity mismatches)"
    )
    return grid_report


def merge_report(output: FilePath, multinode_report: dict) -> dict:
    """Merge the multinode section into the (possibly existing) routing JSON."""
    if output.exists():
        report = json.loads(output.read_text())
    else:
        report = {"benchmark": "bench_multinode"}
    report["multinode"] = multinode_report
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="trimmed workload (CI)")
    parser.add_argument("--queries", type=int, default=None, help="OD pairs per grid")
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing rounds")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--output", default="BENCH_routing.json")
    parser.add_argument(
        "--max-blackout-s",
        type=float,
        default=5.0,
        help="fail when the kill-primary failover batch runs this many "
        "seconds longer than the undisturbed batch; 0 disables the gate",
    )
    args = parser.parse_args(argv)

    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    queries = args.queries or (32 if args.smoke else 128)

    multinode_report: dict = {
        "mode": "smoke" if args.smoke else "full",
        "cores": available_cores(),
        "shard_count": SHARD_COUNT,
        "max_blackout_s": args.max_blackout_s,
        "grids": [],
    }
    for rows, cols in grids:
        print(
            f"benchmarking multi-node transport on {rows}x{cols} grid "
            f"({queries} queries)...",
            flush=True,
        )
        multinode_report["grids"].append(
            bench_grid(
                rows, cols, query_count=queries, repeats=args.repeats, seed=args.seed
            )
        )

    output = FilePath(args.output)
    report = merge_report(output, multinode_report)
    output.write_text(json.dumps(report, indent=2) + "\n")
    worst_blackout = max(
        grid["failover_blackout_seconds"] for grid in multinode_report["grids"]
    )
    print(
        f"merged multinode section into {output} "
        f"(worst failover blackout {worst_blackout:.3f}s)"
    )

    total_mismatches = sum(
        grid["identity_mismatches"] for grid in multinode_report["grids"]
    )
    if total_mismatches:
        print(
            f"FAIL: {total_mismatches} multi-node answers diverged from the "
            "single-process reference costs (identity gate is unconditional)",
            file=sys.stderr,
        )
        return 1

    if args.max_blackout_s and worst_blackout > args.max_blackout_s:
        print(
            f"FAIL: failover blackout {worst_blackout:.3f}s exceeds the "
            f"{args.max_blackout_s:.1f}s gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
