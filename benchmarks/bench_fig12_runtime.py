"""Fig. 12 — online run time per routing query.

The paper reports per-query run times by distance band and region category:
L2R is the fastest (it searches the small region graph), Shortest / Fastest /
TRIP are single-criterion Dijkstra runs on the full network, and Dom is the
slowest because of its multi-cost exploration.  The benchmark prints the same
breakdowns and asserts the robust ordering (Dom slowest; L2R within the same
order of magnitude as the single-criterion baselines).
"""

from __future__ import annotations

from repro.evaluation import format_accuracy_table


def test_fig12_online_runtime(benchmark, d1_report, d2_report, d2):
    scenario, split, pipeline = d2
    query = split.test[0]

    # The timed unit is a single L2R query; the printed tables aggregate the
    # per-query timings measured by the evaluation harness.
    def one_query():
        return pipeline.route(query.source, query.destination)

    benchmark(one_query)

    print()
    print(format_accuracy_table(d1_report.by_distance(), "Fig. 12 (D1-like) run time by distance", value="runtime"))
    print()
    print(format_accuracy_table(d1_report.by_region(), "Fig. 12 (D1-like) run time by region", value="runtime"))
    print()
    print(format_accuracy_table(d2_report.by_distance(), "Fig. 12 (D2-like) run time by distance", value="runtime"))
    print()
    print(format_accuracy_table(d2_report.by_region(), "Fig. 12 (D2-like) run time by region", value="runtime"))

    for report in (d1_report, d2_report):
        runtimes = {a: report.mean_runtime(a) for a in report.algorithms()}
        if "Dom" in runtimes:
            # Dom's multi-cost exploration is the slowest method, as in the paper.
            assert runtimes["Dom"] >= max(v for k, v in runtimes.items() if k != "Dom") * 0.9
        assert runtimes["L2R"] <= 25.0 * max(runtimes["Shortest"], runtimes["Fastest"])
