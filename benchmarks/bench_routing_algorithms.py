"""Micro-benchmarks of the path-finding substrate.

Not a paper table, but useful context for Fig. 12: per-query cost of plain
Dijkstra, A*, bidirectional Dijkstra, contraction-hierarchy queries, and the
preference-aware Dijkstra (Algorithm 2) on the D2-like network.
"""

from __future__ import annotations

import pytest

from repro.preferences import MAJOR_ROADS, PreferenceVector
from repro.routing import (
    CostFeature,
    astar_by_feature,
    bidirectional_by_feature,
    build_contraction_hierarchy,
    ch_shortest_path,
    fastest_path,
    preference_dijkstra,
    shortest_path,
)


@pytest.fixture(scope="module")
def query(d2):
    scenario, split, _ = d2
    trajectory = max(split.test, key=lambda t: t.distance_km(scenario.network))
    return scenario.network, trajectory.source, trajectory.destination


def test_bench_dijkstra_fastest(benchmark, query):
    network, source, destination = query
    path = benchmark(lambda: fastest_path(network, source, destination))
    assert path.is_valid(network)


def test_bench_dijkstra_shortest(benchmark, query):
    network, source, destination = query
    path = benchmark(lambda: shortest_path(network, source, destination))
    assert path.is_valid(network)


def test_bench_astar(benchmark, query):
    network, source, destination = query
    path = benchmark(lambda: astar_by_feature(network, source, destination, CostFeature.TRAVEL_TIME))
    assert path.is_valid(network)


def test_bench_bidirectional(benchmark, query):
    network, source, destination = query
    path = benchmark(lambda: bidirectional_by_feature(network, source, destination, CostFeature.TRAVEL_TIME))
    assert path.is_valid(network)


def test_bench_preference_dijkstra(benchmark, query):
    network, source, destination = query
    preference = PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=MAJOR_ROADS)
    path = benchmark(lambda: preference_dijkstra(network, source, destination, preference))
    assert path.is_valid(network)


def test_bench_contraction_hierarchy_query(benchmark, d2):
    scenario, split, _ = d2
    # CH preprocessing is expensive; build it once on a small sub-problem by
    # reusing the tiny demo network scale via the scenario network directly.
    from repro.network import grid_city_network

    network = grid_city_network(rows=12, cols=12, block_m=300.0, seed=5)
    hierarchy = build_contraction_hierarchy(network, CostFeature.TRAVEL_TIME)
    path = benchmark(lambda: ch_shortest_path(network, 0, network.vertex_count - 1, hierarchy))
    assert path.is_valid(network)


def test_bench_l2r_query(benchmark, d2):
    scenario, split, pipeline = d2
    trajectory = split.test[0]
    path = benchmark(lambda: pipeline.route(trajectory.source, trajectory.destination))
    assert path.is_valid(scenario.network)
