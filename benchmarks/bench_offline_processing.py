"""Offline processing time (Section VII-C, text).

The paper reports the offline cost of (1) building the region graph, (2)
learning T-edge preferences, (3) transferring preferences to B-edges, and (4)
materializing B-edge paths — and notes that learning dominates.  The benchmark
measures one full ``fit`` on the D2-like scenario and prints the breakdown.
"""

from __future__ import annotations

from repro.core import LearnToRoute


def test_offline_processing_breakdown(benchmark, d2):
    scenario, split, _ = d2

    def fit_once():
        return LearnToRoute().fit(scenario.network, split.train[:120])

    pipeline = benchmark.pedantic(fit_once, rounds=1, iterations=1)
    timings = pipeline.offline_timings

    print()
    print("Offline processing time (D2-like, 120 training trajectories)")
    print(f"  Region graph construction : {timings.region_graph_s:8.2f} s")
    print(f"  Preference learning       : {timings.preference_learning_s:8.2f} s")
    print(f"  Preference transfer       : {timings.preference_transfer_s:8.2f} s")
    print(f"  B-edge path materialization: {timings.path_materialization_s:7.2f} s")
    print(f"  Total                     : {timings.total_s:8.2f} s")

    assert timings.total_s > 0.0
    # Paper shape: preference learning is the dominant offline step.
    assert timings.preference_learning_s >= 0.3 * timings.total_s
