"""Ablations of the design choices called out in DESIGN.md.

A1 — the road-type constraint in the clustering (Table I): switching it off
     merges across road classes and yields fewer, larger, less homogeneous
     regions.
A2 — preference transfer for B-edges: disabling the transfer (B-edges fall
     back to fastest paths) should not *improve* routing accuracy, which is
     the justification for Step 2.
"""

from __future__ import annotations

from repro.baselines import L2RAlgorithm
from repro.core import L2RConfig, LearnToRoute
from repro.evaluation import EvaluationHarness
from repro.preferences import TransferConfig
from repro.regions import TrajectoryGraph, cluster_trajectory_graph


def test_ablation_road_type_constraint(benchmark, d2):
    scenario, split, _ = d2
    graph = TrajectoryGraph.from_trajectories(scenario.network, split.train)

    def cluster_both():
        constrained = cluster_trajectory_graph(graph, enforce_road_types=True)
        unconstrained = cluster_trajectory_graph(graph, enforce_road_types=False)
        return constrained, unconstrained

    constrained, unconstrained = benchmark.pedantic(cluster_both, rounds=1, iterations=1)

    print()
    print("Ablation A1: road-type constraint in clustering (D2-like)")
    print(f"  with constraint   : {constrained.cluster_count:5d} regions")
    print(f"  without constraint: {unconstrained.cluster_count:5d} regions")

    # Dropping the Table I constraint merges across road classes, so it can
    # only reduce (or keep) the number of regions.
    assert unconstrained.cluster_count <= constrained.cluster_count


def test_ablation_preference_transfer(benchmark, d2):
    scenario, split, pipeline = d2

    def fit_without_transfer():
        # An extreme amr makes every pair dissimilar: no preference survives
        # the threshold, so all B-edges get null preferences and fall back to
        # fastest paths (the ablated configuration).
        config = L2RConfig(transfer=TransferConfig(amr=1.999))
        return LearnToRoute(config).fit(scenario.network, split.train[:120])

    ablated = benchmark.pedantic(fit_without_transfer, rounds=1, iterations=1)

    def accuracy(model):
        harness = EvaluationHarness(
            network=scenario.network,
            region_graph=model.region_graph,
            bands_km=scenario.bands_km,
        )
        harness.add_algorithm(L2RAlgorithm(model))
        report = harness.evaluate(split.test, max_queries=40)
        return report.mean_accuracy("L2R")

    full_accuracy = accuracy(pipeline)
    ablated_accuracy = accuracy(ablated)

    print()
    print("Ablation A2: preference transfer for B-edges (D2-like)")
    print(f"  full pipeline        : {full_accuracy:6.1f} % (Eq. 1)")
    print(f"  transfer disabled    : {ablated_accuracy:6.1f} % (Eq. 1)")
    null_rate = ablated.model.transfer_result.null_rate if ablated.model.transfer_result else 1.0
    print(f"  null rate when ablated: {100.0 * null_rate:5.1f} %")

    assert full_accuracy > 0.0
    # The ablated pipeline was trained on fewer trajectories, so only a weak
    # sanity bound is asserted; the printed numbers carry the comparison.
    assert ablated_accuracy >= 0.0
