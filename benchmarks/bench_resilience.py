"""Benchmark: fault-free overhead of the PR 7 resilience layer.

The resilience knobs (deadline budgets, retries, circuit breakers,
admission control, degraded stale-route serving) must be close to free on
the fault-free fast path — that is the contract that lets them stay on in
production.  This benchmark runs the **same workload** through two
:class:`~repro.service.RoutingService` instances over the same network:

* **plain** — every resilience knob off (the pre-PR-7 configuration);
* **resilient** — deadline budget, retry policy, per-engine circuit
  breaker, and admission control all enabled (no faults are injected, so
  no retry/breaker/degraded machinery ever fires — only its bookkeeping).

Both sides are timed best-of-``--repeats`` to damp scheduler noise, and the
run fails when the resilient service is more than ``--max-overhead``
(default 10%) slower.  The merged JSON section reports
``faultfree_throughput_ratio`` = plain_seconds / resilient_seconds (higher
is better, ~1.0 expected) so ``check_bench_regression.py`` tracks it like
every other speedup ratio.

A final determinism check replays a seeded :class:`FaultInjector` chaos
schedule twice and asserts identical fault counters — the cheap smoke
version of ``tests/test_resilience.py``'s chaos suite.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke        # CI
    PYTHONPATH=src python benchmarks/bench_resilience.py --max-overhead 0.10
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path as FilePath

from repro.network import grid_city_network
from repro.routing import fastest_path
from repro.service import (
    CircuitBreakerConfig,
    FaultInjector,
    FunctionEngine,
    RetryPolicy,
    RouteRequest,
    RoutingService,
)

FULL_GRIDS = [(30, 30), (60, 60)]
# The overhead is a fixed few microseconds per call, so the smoke grid must
# be big enough that a route costs what real routes cost — on a 12x12 grid
# (~80us/route) the same absolute overhead reads as 2-3x the percentage.
SMOKE_GRIDS = [(20, 20)]


def _requests(network, count: int, seed: int) -> list[RouteRequest]:
    rng = random.Random(seed)
    ids = sorted(network.vertex_ids())
    requests = []
    while len(requests) < count:
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            requests.append(RouteRequest(source=a, destination=b))
    return requests


def _build_service(network, *, resilient: bool) -> RoutingService:
    if resilient:
        service = RoutingService(
            enable_cache=False,
            deadline_s=30.0,
            retry_policy=RetryPolicy(max_retries=2, seed=0),
            breaker=CircuitBreakerConfig(),
            max_in_flight=64,
        )
    else:
        service = RoutingService(enable_cache=False)
    engine = FunctionEngine(
        network, lambda s, d: fastest_path(network, s, d), name="fastest"
    )
    service.register("fastest", engine, default=True)
    return service


def _route_timed(service: RoutingService, request) -> float:
    start = time.perf_counter()
    response = service.route(request)
    elapsed = time.perf_counter() - start
    if not response.ok:
        raise AssertionError(f"fault-free workload failed: {response.error}")
    return elapsed


def _time_pair(plain, resilient, requests, repeats: int) -> tuple[float, float, float]:
    """Per-request paired timing; returns total times plus the median ratio.

    Each request is timed back to back through both services, giving one
    paired resilient/plain ratio per (request, round) sample; the order
    within a pair alternates every round so neither side systematically pays for
    cache/frequency drift the other caused.  The median over hundreds of
    paired samples is what the overhead gate compares — it is far more
    stable on noisy CI machines than a ratio of two wall-clock sums, whose
    single scheduler hiccup can swing the result by 10%.
    """
    plain_total = resilient_total = 0.0
    ratios = []
    for round_index in range(repeats):
        plain_first = round_index % 2 == 0
        for request in requests:
            if plain_first:
                plain_s = _route_timed(plain, request)
                resilient_s = _route_timed(resilient, request)
            else:
                resilient_s = _route_timed(resilient, request)
                plain_s = _route_timed(plain, request)
            plain_total += plain_s
            resilient_total += resilient_s
            ratios.append(resilient_s / plain_s)
    return plain_total / repeats, resilient_total / repeats, statistics.median(ratios)


def bench_grid(rows: int, cols: int, *, query_count: int, repeats: int, seed: int) -> dict:
    network = grid_city_network(rows=rows, cols=cols, seed=seed)
    network.compiled()
    requests = _requests(network, query_count, seed + 1)

    plain = _build_service(network, resilient=False)
    resilient = _build_service(network, resilient=True)

    # Warm both once (lazy compiled caches, code paths) before timing.
    for request in requests:
        _route_timed(plain, request)
        _route_timed(resilient, request)
    plain_seconds, resilient_seconds, median_ratio = _time_pair(
        plain, resilient, requests, repeats
    )

    stats = resilient.stats()
    if stats.retries or stats.shed or stats.breaker_trips or stats.degraded_responses:
        raise AssertionError(
            f"{rows}x{cols}: resilience machinery fired on the fault-free path "
            f"(retries={stats.retries} shed={stats.shed} "
            f"trips={stats.breaker_trips} degraded={stats.degraded_responses})"
        )

    overhead = median_ratio - 1.0
    return {
        "rows": rows,
        "cols": cols,
        "vertices": network.vertex_count,
        "edges": network.edge_count,
        "queries": len(requests),
        "plain_seconds": round(plain_seconds, 6),
        "resilient_seconds": round(resilient_seconds, 6),
        "faultfree_overhead": round(overhead, 4),
        "faultfree_throughput_ratio": round(1.0 / median_ratio, 3),
    }


def chaos_determinism_check(seed: int) -> dict:
    """Two identically seeded chaos runs must produce identical counters."""

    def run() -> tuple:
        network = grid_city_network(rows=8, cols=8, seed=seed)
        injector = FaultInjector(seed=seed)
        flaky = injector.engine(
            FunctionEngine(
                network, lambda s, d: fastest_path(network, s, d), name="flaky"
            ),
            error_rate=0.25,
        )
        service = RoutingService(
            enable_cache=False,
            retry_policy=RetryPolicy(max_retries=1, seed=seed),
            breaker=CircuitBreakerConfig(),
        )
        service.register("flaky", flaky, default=True)
        outcomes = []
        for request in _requests(network, 40, seed + 1):
            response = service.route(request)
            outcomes.append((response.ok, response.degraded, response.retries))
        stats = service.stats()
        return (
            tuple(outcomes),
            flaky.counters.calls,
            flaky.counters.injected_errors,
            stats.retries,
            stats.degraded_responses,
            stats.breaker_trips,
        )

    first, second = run(), run()
    if first != second:
        raise AssertionError(
            "seeded chaos runs diverged: identical seeds must give identical "
            f"outcomes and counters ({first[1:]} vs {second[1:]})"
        )
    return {
        "seed": seed,
        "requests": 40,
        "engine_calls": first[1],
        "injected_errors": first[2],
        "deterministic": True,
    }


def merge_report(output: FilePath, resilience_report: dict) -> dict:
    """Merge the resilience section into the (possibly existing) routing JSON."""
    if output.exists():
        report = json.loads(output.read_text())
    else:
        report = {"benchmark": "bench_resilience"}
    report["resilience"] = resilience_report
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="one small grid (CI)")
    parser.add_argument("--queries", type=int, default=50, help="OD pairs per grid")
    parser.add_argument(
        "--repeats", type=int, default=15, help="paired timing rounds (interleaved)"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_routing.json")
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.10,
        help="fail when the fully-armed service is more than this fraction "
        "slower than the plain one on the fault-free workload (0.10 = 10%%); "
        "0 disables the gate",
    )
    args = parser.parse_args(argv)

    # The smoke workload is tiny (milliseconds per round), so smoke keeps the
    # full repeat count — best-of over few rounds makes the 10% gate flaky.
    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    repeats = args.repeats

    resilience_report = {
        "mode": "smoke" if args.smoke else "full",
        "max_overhead": args.max_overhead,
        "grids": [],
    }
    for rows, cols in grids:
        print(f"benchmarking fault-free resilience overhead on {rows}x{cols} grid...", flush=True)
        grid_report = bench_grid(
            rows, cols, query_count=args.queries, repeats=repeats, seed=args.seed
        )
        resilience_report["grids"].append(grid_report)
        print(
            f"  {grid_report['queries']} queries: plain "
            f"{grid_report['plain_seconds'] * 1e3:.2f}ms  resilient "
            f"{grid_report['resilient_seconds'] * 1e3:.2f}ms  overhead "
            f"{grid_report['faultfree_overhead'] * 100:+.1f}%"
        )

    print("checking seeded chaos determinism...", flush=True)
    resilience_report["chaos_determinism"] = chaos_determinism_check(args.seed)
    print(
        f"  {resilience_report['chaos_determinism']['engine_calls']} engine calls, "
        f"{resilience_report['chaos_determinism']['injected_errors']} injected errors: "
        "two seeded runs identical"
    )

    largest = resilience_report["grids"][-1]
    resilience_report["largest_grid_faultfree_overhead"] = largest["faultfree_overhead"]

    output = FilePath(args.output)
    report = merge_report(output, resilience_report)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"merged resilience section into {output} (largest-grid fault-free "
        f"overhead: {largest['faultfree_overhead'] * 100:+.1f}%)"
    )

    if args.max_overhead:
        worst = max(grid["faultfree_overhead"] for grid in resilience_report["grids"])
        if worst > args.max_overhead:
            print(
                f"FAIL: fault-free overhead {worst * 100:.1f}% exceeds the "
                f"{args.max_overhead * 100:.0f}% gate",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
