"""Benchmark: compiled CSR kernels vs the dict-based reference search.

Measures point-to-point Dijkstra, A*, bidirectional Dijkstra, and the
preference-aware Algorithm-2 search on synthetic city grids of increasing
size, once through the compiled dispatch path and once with the compiled
kernels disabled (the dict-based reference implementations), asserting
path-for-path identical answers along the way.  Results are written to a
machine-readable JSON file (default ``BENCH_routing.json``) so later PRs have
a performance trajectory to compare against.

Usage::

    PYTHONPATH=src python benchmarks/bench_compiled_graph.py
    PYTHONPATH=src python benchmarks/bench_compiled_graph.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_compiled_graph.py --min-speedup 3.0

Timings are hardware-dependent and (except under ``--min-speedup``) never
fail the run; the correctness assertions always do.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path as FilePath

from repro.network import alt_disabled, compiled_disabled, grid_city_network
from repro.network.compiled import sparse
from repro.preferences import PreferenceVector
from repro.preferences.features import MAJOR_ROADS
from repro.routing import (
    CostFeature,
    astar,
    bidirectional_dijkstra,
    cost_function,
    dijkstra,
    heuristic_for,
    preference_dijkstra,
)

FULL_GRIDS = [(20, 20), (40, 40), (60, 60)]
SMOKE_GRIDS = [(12, 12)]


def _queries(network, count: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    ids = sorted(network.vertex_ids())
    pairs = []
    while len(pairs) < count:
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            pairs.append((a, b))
    return pairs


def _kernel_runners(network):
    cost = cost_function(CostFeature.TRAVEL_TIME)
    preference = PreferenceVector(master=CostFeature.TRAVEL_TIME, slave=MAJOR_ROADS)

    def run_dijkstra(source, destination):
        return dijkstra(network, source, destination, cost)

    def run_astar(source, destination):
        return astar(
            network,
            source,
            destination,
            cost,
            heuristic_for(network, destination, CostFeature.TRAVEL_TIME),
        )

    def run_bidirectional(source, destination):
        return bidirectional_dijkstra(network, source, destination, cost)

    def run_preference(source, destination):
        return preference_dijkstra(network, source, destination, preference)

    return {
        "dijkstra": run_dijkstra,
        "astar": run_astar,
        "bidirectional": run_bidirectional,
        "preference_dijkstra": run_preference,
    }


def _time_queries(runner, queries) -> tuple[float, list[tuple[int, ...]]]:
    paths: list[tuple[int, ...]] = []
    start = time.perf_counter()
    for source, destination in queries:
        paths.append(runner(source, destination).vertices)
    return time.perf_counter() - start, paths


def bench_grid(rows: int, cols: int, query_count: int, seed: int) -> dict:
    network = grid_city_network(rows=rows, cols=cols, seed=seed)
    queries = _queries(network, query_count, seed + 1)

    compile_start = time.perf_counter()
    network.compiled()
    compile_seconds = time.perf_counter() - compile_start

    result = {
        "rows": rows,
        "cols": cols,
        "vertices": network.vertex_count,
        "edges": network.edge_count,
        "queries": len(queries),
        "compile_seconds": round(compile_seconds, 6),
        "kernels": {},
    }

    runners = _kernel_runners(network)
    for name, runner in runners.items():
        # This benchmark measures the *plain* compiled kernels, whose paths
        # are identical to the references (ALT goal-directed search is only
        # cost-identical; bench_alt_landmarks.py covers it).
        with alt_disabled():
            runner(*queries[0])  # warm caches (cost arrays, sparse matrices)
            compiled_seconds, compiled_paths = _time_queries(runner, queries)
        with compiled_disabled():
            dict_seconds, dict_paths = _time_queries(runner, queries)
        if compiled_paths != dict_paths:
            mismatches = sum(1 for a, b in zip(compiled_paths, dict_paths) if a != b)
            raise AssertionError(
                f"{name} on {rows}x{cols}: compiled and dict kernels disagree "
                f"on {mismatches}/{len(queries)} queries"
            )
        result["kernels"][name] = {
            "dict_seconds": round(dict_seconds, 6),
            "compiled_seconds": round(compiled_seconds, 6),
            "speedup": round(dict_seconds / compiled_seconds, 3) if compiled_seconds else None,
        }
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="one small grid (CI)")
    parser.add_argument("--queries", type=int, default=40, help="OD pairs per grid")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_routing.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless compiled Dijkstra beats the dict kernel by this "
        "factor on the largest grid (0 = report only)",
    )
    args = parser.parse_args(argv)

    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    queries = min(args.queries, 15) if args.smoke else args.queries

    report = {
        "benchmark": "bench_compiled_graph",
        "mode": "smoke" if args.smoke else "full",
        "queries_per_grid": queries,
        "scipy_available": sparse.HAVE_SCIPY,
        "grids": [],
    }
    for rows, cols in grids:
        print(f"benchmarking {rows}x{cols} grid ({queries} queries)...", flush=True)
        grid_report = bench_grid(rows, cols, queries, args.seed)
        report["grids"].append(grid_report)
        for name, numbers in grid_report["kernels"].items():
            print(
                f"  {name:>20}: dict {numbers['dict_seconds']:.4f}s  "
                f"compiled {numbers['compiled_seconds']:.4f}s  "
                f"speedup {numbers['speedup']}x"
            )

    largest = report["grids"][-1]
    dijkstra_speedup = largest["kernels"]["dijkstra"]["speedup"]
    report["largest_grid_dijkstra_speedup"] = dijkstra_speedup

    output = FilePath(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output} (largest-grid Dijkstra speedup: {dijkstra_speedup}x)")

    if args.min_speedup and (dijkstra_speedup or 0.0) < args.min_speedup:
        print(
            f"FAIL: Dijkstra speedup {dijkstra_speedup}x below required "
            f"{args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
