"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on scaled-down
synthetic counterparts of the paper's data sets (see DESIGN.md for the
substitution rationale).  The expensive artifacts — scenarios, fitted L2R
pipelines, evaluation reports — are session-scoped and shared across
benchmarks; the ``benchmark`` fixture then times a representative unit of work
while the printed tables report the reproduced numbers.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    DomBaseline,
    FastestBaseline,
    L2RAlgorithm,
    ShortestBaseline,
    TripBaseline,
)
from repro.core import LearnToRoute
from repro.datasets import d1_like_scenario, d2_like_scenario
from repro.datasets.splits import split_by_id
from repro.evaluation import EvaluationHarness

D1_SCALE = 0.25
D2_SCALE = 0.20
MAX_QUERIES = 60


@pytest.fixture(scope="session")
def d1(request):
    """The D1-like (Denmark) scenario with its split and fitted pipeline."""
    scenario = d1_like_scenario(scale=D1_SCALE)
    split = split_by_id(scenario.trajectories, train_fraction=0.75)
    pipeline = LearnToRoute().fit(scenario.network, split.train)
    return scenario, split, pipeline


@pytest.fixture(scope="session")
def d2(request):
    """The D2-like (Chengdu) scenario with its split and fitted pipeline."""
    scenario = d2_like_scenario(scale=D2_SCALE)
    split = split_by_id(scenario.trajectories, train_fraction=0.75)
    pipeline = LearnToRoute().fit(scenario.network, split.train)
    return scenario, split, pipeline


def build_report(scenario, split, pipeline, include_personalized: bool = True):
    """Run the full comparison harness on one scenario."""
    harness = EvaluationHarness(
        network=scenario.network,
        region_graph=pipeline.region_graph,
        bands_km=scenario.bands_km,
    )
    harness.add_algorithm(L2RAlgorithm(pipeline))
    harness.add_algorithm(ShortestBaseline(scenario.network))
    harness.add_algorithm(FastestBaseline(scenario.network))
    if include_personalized:
        harness.add_algorithm(DomBaseline(scenario.network, split.train, max_trajectories_per_driver=4))
        harness.add_algorithm(TripBaseline(scenario.network, split.train))
    return harness.evaluate(split.test, max_queries=MAX_QUERIES)


@pytest.fixture(scope="session")
def d1_report(d1):
    scenario, split, pipeline = d1
    return build_report(scenario, split, pipeline)


@pytest.fixture(scope="session")
def d2_report(d2):
    scenario, split, pipeline = d2
    return build_report(scenario, split, pipeline)
