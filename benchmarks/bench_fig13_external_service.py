"""Fig. 13 — comparison with a commercial routing service (Google Maps).

The paper queries the Google Directions API and compares the way-point answers
against ground-truth paths using a 10 m band (Fig. 14).  Offline, the
comparison runs against the simulated external service (time-optimal,
major-road-biased, way-point output; see DESIGN.md).  The benchmark reports
accuracy by distance band and by region category for both the service and L2R,
and asserts the paper's qualitative finding that trajectory-based routing
tracks local drivers at least as well as the cost-centric service.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines import ExternalRoutingService, waypoint_accuracy
from repro.evaluation import RegionCategory, format_series, region_category
from repro.preferences import path_similarity
from repro.trajectories.statistics import band_index


def test_fig13_external_service_comparison(benchmark, d2):
    scenario, split, pipeline = d2
    service = ExternalRoutingService(scenario.network)
    queries = split.test[:50]

    def compute():
        rows = []
        for trajectory in queries:
            waypoints = service.directions(trajectory.source, trajectory.destination)
            google_accuracy = 100.0 * waypoint_accuracy(
                scenario.network, trajectory.path, waypoints, band_m=10.0
            )
            l2r_path = pipeline.route(trajectory.source, trajectory.destination)
            l2r_accuracy = 100.0 * path_similarity(scenario.network, trajectory.path, l2r_path)
            band = band_index(trajectory.distance_km(scenario.network), scenario.bands_km)
            category = region_category(
                pipeline.region_graph, trajectory.source, trajectory.destination
            )
            rows.append((band, category, google_accuracy, l2r_accuracy))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    by_band: dict[int, list[tuple[float, float]]] = defaultdict(list)
    by_category: dict[RegionCategory, list[tuple[float, float]]] = defaultdict(list)
    for band, category, google_accuracy, l2r_accuracy in rows:
        if band is not None:
            by_band[band].append((google_accuracy, l2r_accuracy))
        by_category[category].append((google_accuracy, l2r_accuracy))

    def mean(values):
        return sum(values) / len(values) if values else 0.0

    band_labels = [f"({lo:g},{hi:g}]" for lo, hi in scenario.bands_km]
    google_by_band = [mean([g for g, _ in by_band.get(i, [])]) for i in range(len(scenario.bands_km))]
    l2r_by_band = [mean([l for _, l in by_band.get(i, [])]) for i in range(len(scenario.bands_km))]

    print()
    print("Fig. 13 (D2-like): L2R vs. simulated external service, by distance")
    print(format_series({"Google %": google_by_band, "L2R %": l2r_by_band}, band_labels, "Accuracy"))

    category_labels = [c.value for c in RegionCategory]
    google_by_cat = [mean([g for g, _ in by_category.get(c, [])]) for c in RegionCategory]
    l2r_by_cat = [mean([l for _, l in by_category.get(c, [])]) for c in RegionCategory]
    print()
    print("Fig. 13 (D2-like): L2R vs. simulated external service, by region category")
    print(format_series({"Google %": google_by_cat, "L2R %": l2r_by_cat}, category_labels, "Accuracy"))

    overall_google = mean([g for _, _, g, _ in rows])
    overall_l2r = mean([l for _, _, _, l in rows])
    assert overall_google > 0.0
    # Paper shape: L2R is competitive with (in the paper, better than) the
    # cost-centric commercial service at matching local drivers' paths.
    assert overall_l2r >= 0.6 * overall_google
