"""Serving throughput of ``RoutingService.route_many``.

Measures requests/second of the batch API (thread-pool fan-out) against a
plain single-call loop over the same request set, on the D2-like scenario,
and reports the cache's effect on a repeated batch.  The timed unit is one
uncached ``route_many`` batch; the printed table summarizes all three serving
modes.
"""

from __future__ import annotations

import time

from repro.baselines import FastestBaseline
from repro.service import L2REngine, RouteRequest, RoutingService


def _requests(split, n: int = 40) -> list[RouteRequest]:
    return [
        RouteRequest(
            source=t.source,
            destination=t.destination,
            departure_time=t.departure_time,
            driver_id=t.driver_id,
        )
        for t in split.test[:n]
    ]


def _rps(n_requests: int, elapsed_s: float) -> float:
    return n_requests / elapsed_s if elapsed_s > 0 else float("inf")


def test_service_throughput(benchmark, d2):
    scenario, split, pipeline = d2
    requests = _requests(split)

    def build_service(enable_cache: bool) -> RoutingService:
        service = RoutingService(enable_cache=enable_cache)
        service.register("L2R", L2REngine(pipeline), fallback="Fastest", default=True)
        service.register("Fastest", FastestBaseline(scenario.network).as_engine())
        return service

    # Timed unit: one uncached batched route_many over the request set (the
    # service is built once outside the timed callable).
    bench_service = build_service(enable_cache=False)

    def batched():
        return bench_service.route_many(requests, max_workers=4)

    responses = benchmark(batched)
    assert len(responses) == len(requests)
    assert all(r.ok for r in responses)

    # Comparison: single-call loop vs batch vs warm cache, on fresh services.
    loop_service = build_service(enable_cache=False)
    started = time.perf_counter()
    loop_responses = [loop_service.route(request) for request in requests]
    loop_s = time.perf_counter() - started

    batch_service = build_service(enable_cache=False)
    started = time.perf_counter()
    batch_responses = batch_service.route_many(requests, max_workers=4)
    batch_s = time.perf_counter() - started

    cached_service = build_service(enable_cache=True)
    cached_service.route_many(requests, max_workers=4)  # warm the cache
    started = time.perf_counter()
    cached_responses = cached_service.route_many(requests, max_workers=4)
    cached_s = time.perf_counter() - started

    print()
    print("RoutingService throughput (D2-like, %d requests)" % len(requests))
    print(f"  single-call loop : {_rps(len(requests), loop_s):>10.0f} req/s")
    print(f"  route_many (4 w) : {_rps(len(requests), batch_s):>10.0f} req/s")
    print(f"  warm route cache : {_rps(len(requests), cached_s):>10.0f} req/s")
    stats = cached_service.stats()
    print(
        f"  cache hit rate {stats.cache_hit_rate:.0%}, "
        f"p50 {stats.latency_p50_s * 1e3:.3f} ms, p95 {stats.latency_p95_s * 1e3:.3f} ms"
    )

    # Same answers regardless of serving mode.
    for loop_r, batch_r, cached_r in zip(loop_responses, batch_responses, cached_responses):
        assert loop_r.path.vertices == batch_r.path.vertices == cached_r.path.vertices
    assert all(r.cache_hit for r in cached_responses)
