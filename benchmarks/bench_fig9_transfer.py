"""Fig. 9 — parameters of the preference transfer.

Fig. 9(a): transfer accuracy as a function of the number of T-edge preference
partitions used as training data (X, 2X, 3X, 4X out of a 5-way partition, the
last partition being held out as ground truth).  The paper observes accuracy
growing with the amount of training data.

Fig. 9(b): accuracy, null rate (N-rate), and run time as the adjacency-matrix
reduction threshold ``amr`` sweeps over {0.5 ... 0.9}.  The paper observes the
accuracy to be largely insensitive, the null rate to grow, and the run time to
shrink as ``amr`` increases.
"""

from __future__ import annotations

from repro.datasets.splits import k_fold_partitions
from repro.evaluation import format_series
from repro.preferences import (
    PreferenceTransfer,
    TransferConfig,
    evaluate_transfer_accuracy,
)


def _labelled_t_edges(pipeline):
    return [e for e in pipeline.region_graph.t_edges() if e.preference is not None]


def _transfer_accuracy(edges, train_folds, test_fold, config):
    train_edges = [e for fold in train_folds for e in fold]
    test_edges = list(test_fold)
    all_edges = train_edges + test_edges
    labelled = [e.preference for e in train_edges] + [None] * len(test_edges)
    result = PreferenceTransfer(config=config).transfer(all_edges, labelled)
    transferred = result.preferences[len(train_edges):]
    truths = [e.preference for e in test_edges]
    accuracy = 100.0 * evaluate_transfer_accuracy(test_edges, truths, transferred)
    null_rate = 100.0 * result.null_rate
    return accuracy, null_rate, result.runtime_s


def test_fig9a_transfer_accuracy_vs_t_edges(benchmark, d2):
    _, _, pipeline = d2
    edges = _labelled_t_edges(pipeline)[:400]
    folds = k_fold_partitions(edges, k=5)
    test_fold = folds[-1]
    config = TransferConfig(amr=0.7)

    def compute():
        accuracies = []
        for used in (1, 2, 3, 4):
            accuracy, _, _ = _transfer_accuracy(edges, folds[:used], test_fold, config)
            accuracies.append(accuracy)
        return accuracies

    accuracies = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print("Fig. 9(a): transfer accuracy vs. number of T-edge partitions (D2-like)")
    print(format_series({"Accuracy %": accuracies}, ["X", "2X", "3X", "4X"], "Jaccard accuracy"))

    # Paper shape: accuracy does not degrade as more training partitions are used.
    assert accuracies[-1] >= accuracies[0] - 5.0
    assert all(a > 0.0 for a in accuracies)


def test_fig9b_amr_sweep(benchmark, d2):
    _, _, pipeline = d2
    edges = _labelled_t_edges(pipeline)[:400]
    folds = k_fold_partitions(edges, k=5)
    test_fold = folds[-1]
    amr_values = (0.5, 0.6, 0.7, 0.8, 0.9)

    def compute():
        accuracy_series, null_series, runtime_series = [], [], []
        for amr in amr_values:
            accuracy, null_rate, runtime = _transfer_accuracy(
                edges, folds[:4], test_fold, TransferConfig(amr=amr)
            )
            accuracy_series.append(accuracy)
            null_series.append(null_rate)
            runtime_series.append(runtime * 1000.0)
        return accuracy_series, null_series, runtime_series

    accuracy_series, null_series, runtime_series = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print("Fig. 9(b): varying the adjacency-matrix reduction threshold amr (D2-like)")
    print(
        format_series(
            {"Accuracy %": accuracy_series, "N-Rate %": null_series, "Run-time ms": runtime_series},
            [str(v) for v in amr_values],
            "amr sweep",
        )
    )

    # Paper shape: the null rate is non-decreasing in amr (stricter threshold
    # leaves more B-edges without a preference).
    assert null_series[-1] >= null_series[0] - 1e-9
    assert all(a >= 0.0 for a in accuracy_series)
