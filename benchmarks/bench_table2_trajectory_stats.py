"""Table II — travel-distance distribution of the trajectory data sets.

Reproduces the per-band trajectory counts and percentages for the D1-like and
D2-like synthetic data sets.  The paper reports that D1 is dominated by trips
under 10 km (91.6 %) with a long tail up to 500 km, while D2 trips concentrate
in the 2-5 km band; the synthetic scenarios reproduce the same shape (most
mass in the shortest bands, a thin long-distance tail).
"""

from __future__ import annotations

from repro.trajectories import distance_band_statistics, format_distance_table


def test_table2_distance_distribution(benchmark, d1, d2):
    scenario_d1, _, _ = d1
    scenario_d2, _, _ = d2

    def compute():
        return (
            distance_band_statistics(scenario_d1.trajectories, scenario_d1.network, scenario_d1.bands_km),
            distance_band_statistics(scenario_d2.trajectories, scenario_d2.network, scenario_d2.bands_km),
        )

    stats_d1, stats_d2 = benchmark(compute)

    print()
    print(format_distance_table(stats_d1, title="Table II (D1-like): trajectory distances"))
    print()
    print(format_distance_table(stats_d2, title="Table II (D2-like): trajectory distances"))

    assert stats_d1.total > 0 and stats_d2.total > 0
    # Shape checks.  D2-like: trips concentrate in the short bands, as in the
    # paper.  D1-like: the extreme long-distance band stays a minority (the
    # synthetic country scenario has a flatter mix than the paper's fleet,
    # which is dominated by sub-10 km commutes; see EXPERIMENTS.md).
    assert max(stats_d2.counts[:2]) >= max(stats_d2.counts[2:])
    assert stats_d1.counts[-1] < 0.5 * stats_d1.total
